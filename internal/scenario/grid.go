package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/trace"
)

// The paper states every claim as a function of the model parameters —
// latency in units of δ, the ε+3τ+5δ bound's dependence on σ and ρ — so a
// single-axis sweep over N cannot draw the phase diagrams the related work
// lives by. A Grid takes a base Spec plus any subset of parameter axes,
// executes every cell through the scenario engine's worker pool (cells are
// independent, so parallelism spans the whole grid), and aggregates into a
// GridReport with text/CSV/JSON renderers. The experiment tables, the sweep
// CLI, and the benchmarks all run through it.

// AxisValue is one point of an axis: how it modifies the base Spec and the
// canonical label it carries in reports.
type AxisValue struct {
	// Label renders the value in report coordinates ("5ms", "0.01", "17").
	Label string
	// Apply writes the value into a cell's spec.
	Apply func(*Spec)
}

// Axis is one swept parameter: a name and its values in sweep order.
type Axis struct {
	Name   string
	Values []AxisValue
}

// NAxis sweeps the cluster size.
func NAxis(vals ...int) Axis {
	ax := Axis{Name: "n"}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: strconv.Itoa(v),
			Apply: func(s *Spec) { s.N = v },
		})
	}
	return ax
}

// durationAxis builds an axis over a time.Duration spec field.
func durationAxis(name string, set func(*Spec, time.Duration), vals []time.Duration) Axis {
	ax := Axis{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: v.String(),
			Apply: func(s *Spec) { set(s, v) },
		})
	}
	return ax
}

// DeltaAxis sweeps δ, the post-stabilization delivery bound.
func DeltaAxis(vals ...time.Duration) Axis {
	return durationAxis("delta", func(s *Spec, v time.Duration) { s.Delta = v }, vals)
}

// TSAxis sweeps the stabilization time. A zero value means stable from
// start (Spec.StableFromStart), which a bare zero TS cannot express.
func TSAxis(vals ...time.Duration) Axis {
	return durationAxis("ts", func(s *Spec, v time.Duration) {
		s.TS = v
		s.StableFromStart = v == 0
	}, vals)
}

// SigmaAxis sweeps σ, the modified-Paxos session-timer upper bound.
func SigmaAxis(vals ...time.Duration) Axis {
	return durationAxis("sigma", func(s *Spec, v time.Duration) { s.Sigma = v }, vals)
}

// EpsAxis sweeps ε, the heartbeat period.
func EpsAxis(vals ...time.Duration) Axis {
	return durationAxis("eps", func(s *Spec, v time.Duration) { s.Eps = v }, vals)
}

// RhoAxis sweeps the clock-rate error bound ρ.
func RhoAxis(vals ...float64) Axis {
	ax := Axis{Name: "rho"}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: strconv.FormatFloat(v, 'g', -1, 64),
			Apply: func(s *Spec) { s.Clocks.Rho = v },
		})
	}
	return ax
}

// AttackKAxis sweeps the strength of the base spec's attack. The base Spec
// chooses the attack kind (Adversary.Attack); a value of 0 disables the
// attack for that cell — the Adversary convention "K=0 scales with N" would
// otherwise make a strength sweep unable to express its own origin.
func AttackKAxis(vals ...int) Axis {
	ax := Axis{Name: "attackk"}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: strconv.Itoa(v),
			Apply: func(s *Spec) {
				if v == 0 {
					s.Adversary = AdversaryProfile{}
				} else {
					s.Adversary.K = v
				}
			},
		})
	}
	return ax
}

// CustomAxis builds an axis from arbitrary spec transformations — the
// escape hatch for sweeps over anything a Spec can express (per-column
// protocol+adversary variants, fault schedules, clock profiles).
func CustomAxis(name string, vals ...AxisValue) Axis {
	return Axis{Name: name, Values: vals}
}

// ParseAxis parses a CLI axis argument of the form "name=v1,v2,...".
// Axis names: n, delta, ts, sigma, eps (durations), rho (floats),
// attackk/k (ints).
func ParseAxis(arg string) (Axis, error) {
	name, list, ok := strings.Cut(arg, "=")
	if !ok {
		return Axis{}, fmt.Errorf("axis %q: want name=v1,v2,...", arg)
	}
	name = strings.ToLower(strings.TrimSpace(name))
	var parts []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return Axis{}, fmt.Errorf("axis %q: no values", arg)
	}
	switch name {
	case "n":
		var vals []int
		for _, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v < 1 {
				return Axis{}, fmt.Errorf("axis n: bad cluster size %q", p)
			}
			vals = append(vals, v)
		}
		return NAxis(vals...), nil
	case "delta", "ts", "sigma", "eps":
		var vals []time.Duration
		for _, p := range parts {
			v, err := time.ParseDuration(p)
			if err != nil || v < 0 {
				return Axis{}, fmt.Errorf("axis %s: bad duration %q", name, p)
			}
			vals = append(vals, v)
		}
		switch name {
		case "delta":
			return DeltaAxis(vals...), nil
		case "ts":
			return TSAxis(vals...), nil
		case "sigma":
			return SigmaAxis(vals...), nil
		default:
			return EpsAxis(vals...), nil
		}
	case "rho":
		var vals []float64
		for _, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil || v < 0 || v >= 1 {
				return Axis{}, fmt.Errorf("axis rho: bad rate error %q (want 0 ≤ ρ < 1)", p)
			}
			vals = append(vals, v)
		}
		return RhoAxis(vals...), nil
	case "attackk", "k":
		var vals []int
		for _, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v < 0 {
				return Axis{}, fmt.Errorf("axis attackk: bad strength %q", p)
			}
			vals = append(vals, v)
		}
		return AttackKAxis(vals...), nil
	default:
		return Axis{}, fmt.Errorf("unknown axis %q (want n, delta, ts, sigma, eps, rho, or attackk)", name)
	}
}

// Grid is a base scenario swept across parameter axes.
type Grid struct {
	// Base is the scenario every cell starts from.
	Base Spec
	// Axes are the swept parameters. With one axis per call this is the
	// old single-axis sweep; more axes form a cross-product (first axis
	// outermost) unless Zip is set.
	Axes []Axis
	// Zip pairs the axes element-wise instead of crossing them: cell i
	// takes value i of every axis, so all axes must have equal length.
	Zip bool
	// Workers sizes the worker pool shared by every cell's (protocol,
	// seed) matrix; 0 uses GOMAXPROCS. The report is identical for every
	// worker count.
	Workers int
	// FailFast stops scheduling cells after the first cell with a
	// violated check, leaving a partial report (Truncated marks it). Cells
	// are executed one at a time in deterministic order, so the worker
	// pool spans only each cell's (protocol, seed) matrix — a latency
	// trade for large grids whose early cells gate the rest.
	FailFast bool
}

// AxisPoint is one coordinate of a grid cell.
type AxisPoint struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// CellParams records the model parameters of one cell as specified, so CSV
// rows are self-describing regardless of which axes were swept. Sigma and
// Eps are the spec values: 0 means the protocol's own default (σ's default
// depends on ρ and the protocol, so only the harness can resolve it).
type CellParams struct {
	N       int           `json:"n"`
	Delta   time.Duration `json:"delta_ns"`
	TS      time.Duration `json:"ts_ns"`
	Rho     float64       `json:"rho"`
	Sigma   time.Duration `json:"sigma_ns"`
	Eps     time.Duration `json:"eps_ns"`
	AttackK int           `json:"attack_k"`
}

// GridCell is one executed cell: its coordinates, resolved parameters, and
// the scenario report.
type GridCell struct {
	Coords []AxisPoint `json:"coords"`
	Params CellParams  `json:"params"`
	Report *Report     `json:"report"`
}

// GridReport is the aggregate outcome of a grid execution, in deterministic
// cell order (cross-product row-major, or zip order).
type GridReport struct {
	Name  string     `json:"name"`
	Axes  []string   `json:"axes"`
	Zip   bool       `json:"zipped,omitempty"`
	Cells []GridCell `json:"cells"`
	// Truncated reports that a fail-fast grid stopped before executing
	// every cell: Cells ends with the first violated cell.
	Truncated bool `json:"truncated,omitempty"`
}

// cellSpecs resolves every cell of the grid into a concrete Spec plus its
// coordinates, in deterministic order.
func (g Grid) cellSpecs() ([]Spec, [][]AxisPoint, error) {
	seen := make(map[string]bool, len(g.Axes))
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return nil, nil, fmt.Errorf("grid: axis %q has no values", ax.Name)
		}
		if seen[ax.Name] {
			// A repeated axis would silently overwrite itself cell by cell,
			// leaving coordinates that lie about the parameters run.
			return nil, nil, fmt.Errorf("grid: axis %q given twice", ax.Name)
		}
		seen[ax.Name] = true
	}
	if g.Zip && len(g.Axes) > 0 {
		for _, ax := range g.Axes[1:] {
			if len(ax.Values) != len(g.Axes[0].Values) {
				return nil, nil, fmt.Errorf("grid: zipped axes must have equal lengths (%s has %d, %s has %d)",
					g.Axes[0].Name, len(g.Axes[0].Values), ax.Name, len(ax.Values))
			}
		}
	}
	var specs []Spec
	var coords [][]AxisPoint
	emit := func(idx []int) {
		spec := g.Base
		pts := make([]AxisPoint, len(g.Axes))
		for ai, ax := range g.Axes {
			v := ax.Values[idx[ai]]
			v.Apply(&spec)
			pts[ai] = AxisPoint{Axis: ax.Name, Value: v.Label}
		}
		specs = append(specs, spec.withDefaults())
		coords = append(coords, pts)
	}
	if len(g.Axes) == 0 {
		emit(nil)
	} else if g.Zip {
		for i := range g.Axes[0].Values {
			idx := make([]int, len(g.Axes))
			for ai := range idx {
				idx[ai] = i
			}
			emit(idx)
		}
	} else {
		idx := make([]int, len(g.Axes))
		for {
			emit(idx)
			ai := len(idx) - 1
			for ; ai >= 0; ai-- {
				idx[ai]++
				if idx[ai] < len(g.Axes[ai].Values) {
					break
				}
				idx[ai] = 0
			}
			if ai < 0 {
				break
			}
		}
	}
	return specs, coords, nil
}

// Run executes every cell of the grid on one shared worker pool and
// aggregates the reports. As with Run, violated invariants are recorded in
// the cell reports; the error path is reserved for cells that cannot run at
// all (the first failing cell, in deterministic cell order, is returned).
func (g Grid) Run() (*GridReport, error) {
	specs, coords, err := g.cellSpecs()
	if err != nil {
		return nil, err
	}
	rep := &GridReport{Name: g.Base.Name, Zip: g.Zip && len(g.Axes) > 1}
	for _, ax := range g.Axes {
		rep.Axes = append(rep.Axes, ax.Name)
	}
	appendCell := func(i int, matrix [][]cell) error {
		spec := specs[i]
		r, err := aggregate(spec, matrix)
		if err != nil {
			return fmt.Errorf("grid cell %s: %w", coordString(coords[i]), err)
		}
		params := CellParams{
			N: spec.N, Delta: spec.Delta, TS: spec.TS,
			Rho: spec.Clocks.Rho, Sigma: spec.Sigma, Eps: spec.Eps,
		}
		if spec.Adversary.Attack != "" && spec.Adversary.Attack != harness.NoAttack {
			params.AttackK = spec.Adversary.strength(spec.N)
		}
		rep.Cells = append(rep.Cells, GridCell{Coords: coords[i], Params: params, Report: r})
		return nil
	}
	if g.FailFast {
		// One cell at a time, in deterministic order; the first violated
		// cell is the last one in the report.
		for i := range specs {
			matrices := execute(specs[i:i+1], g.Workers)
			if err := appendCell(i, matrices[0]); err != nil {
				return nil, err
			}
			if len(rep.Cells[len(rep.Cells)-1].Report.Violations) > 0 {
				rep.Truncated = i+1 < len(specs)
				break
			}
		}
		return rep, nil
	}
	matrices := execute(specs, g.Workers)
	for i := range specs {
		if err := appendCell(i, matrices[i]); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// coordString renders cell coordinates as "n=5 delta=10ms".
func coordString(pts []AxisPoint) string {
	if len(pts) == 0 {
		return "(base)"
	}
	parts := make([]string, len(pts))
	for i, p := range pts {
		parts[i] = p.Axis + "=" + p.Value
	}
	return strings.Join(parts, " ")
}

// Passed reports whether every check passed in every cell.
func (r *GridReport) Passed() bool { return r.TotalViolations() == 0 }

// TotalViolations counts failed checks across all cells.
func (r *GridReport) TotalViolations() int {
	n := 0
	for _, c := range r.Cells {
		n += len(c.Report.Violations)
	}
	return n
}

// protocolOrder returns the union of protocol names across cells in order
// of first appearance (cells may carry different protocol sets when a
// custom axis varies them).
func (r *GridReport) protocolOrder() []harness.Protocol {
	var order []harness.Protocol
	seen := make(map[harness.Protocol]bool)
	for _, c := range r.Cells {
		for _, pr := range c.Report.Protocols {
			if !seen[pr.Protocol] {
				seen[pr.Protocol] = true
				order = append(order, pr.Protocol)
			}
		}
	}
	return order
}

// Text renders the grid as an aligned matrix — one row per cell, one
// median-latency column (in δ) per protocol, "!" marking cells with
// violations — followed by the violation details.
func (r *GridReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid %s — axes: %s\n", r.Name, strings.Join(r.Axes, " × "))
	protos := r.protocolOrder()
	width := 8
	for _, c := range r.Cells {
		if w := len(coordString(c.Coords)); w > width {
			width = w
		}
	}
	fmt.Fprintf(&b, "%-*s  ", width, "cell")
	for _, p := range protos {
		fmt.Fprintf(&b, "%-14s", p)
	}
	b.WriteString("\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-*s  ", width, coordString(c.Coords))
		byProto := make(map[harness.Protocol]ProtocolReport, len(c.Report.Protocols))
		for _, pr := range c.Report.Protocols {
			byProto[pr.Protocol] = pr
		}
		for _, p := range protos {
			pr, ok := byProto[p]
			if !ok {
				fmt.Fprintf(&b, "%-14s", "-")
				continue
			}
			cell := trace.InDelta(pr.Latency.Median, c.Report.Delta)
			if len(c.Report.Violations) > 0 {
				cell += "!"
			}
			fmt.Fprintf(&b, "%-14s", cell)
		}
		b.WriteString("\n")
	}
	if v := r.TotalViolations(); v > 0 {
		fmt.Fprintf(&b, "\nviolations: %d\n", v)
		for _, c := range r.Cells {
			for _, viol := range c.Report.Violations {
				fmt.Fprintf(&b, "  %-20s %-12s seed=%-6d %-16s %s\n",
					coordString(c.Coords), viol.Protocol, viol.Seed, viol.Check, viol.Detail)
			}
		}
	}
	if r.Truncated {
		b.WriteString("\n(fail-fast: remaining cells were not executed)\n")
	}
	return b.String()
}

// GridCSVHeader is the stable CSV column order of grid reports. Every row
// carries the cell's full resolved parameters, so the schema is identical
// whatever axes were swept.
// The decision-latency quantile columns trail the schema (appended, never
// inserted) so prefix-matching consumers survive; they are 0 unless the base
// spec set Observe.
const GridCSVHeader = "scenario,n,delta_ns,ts_ns,rho,sigma_ns,eps_ns,attack_k," +
	"protocol,seeds,decided,latency_median_ns,latency_median_deltas,latency_max_ns," +
	"bound_ns,messages_median,violations," +
	"decision_p50_ns,decision_p95_ns,decision_p99_ns"

// CSVRows renders one row per (cell, protocol) pair, in deterministic
// order, without the header (so multiple grids can share one stream).
func (r *GridReport) CSVRows() []string {
	var rows []string
	for _, c := range r.Cells {
		p := c.Params
		for _, pr := range c.Report.Protocols {
			nViol := 0
			for _, v := range c.Report.Violations {
				if v.Protocol == pr.Protocol {
					nViol++
				}
			}
			var p50, p95, p99 int64
			if h := pr.DecisionLatency; h != nil {
				p50, p95, p99 = h.P50, h.P95, h.P99
			}
			rows = append(rows, fmt.Sprintf("%s,%d,%d,%d,%s,%d,%d,%d,%s,%d,%d,%d,%.3f,%d,%d,%d,%d,%d,%d,%d",
				r.Name, p.N, int64(p.Delta), int64(p.TS),
				strconv.FormatFloat(p.Rho, 'g', -1, 64), int64(p.Sigma), int64(p.Eps), p.AttackK,
				pr.Protocol, pr.Seeds, pr.Decided,
				int64(pr.Latency.Median), float64(pr.Latency.Median)/float64(c.Report.Delta),
				int64(pr.Latency.Max), int64(pr.Bound), int64(pr.Messages.Median), nViol,
				p50, p95, p99))
		}
	}
	return rows
}

// CSV renders the full report: the stable header plus one row per
// (cell, protocol) pair.
func (r *GridReport) CSV() string {
	return GridCSVHeader + "\n" + strings.Join(r.CSVRows(), "\n") + "\n"
}

// JSON renders the report as indented JSON.
func (r *GridReport) JSON() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// AxisNames lists the parseable CLI axis names, for usage strings.
func AxisNames() []string {
	names := []string{"n", "delta", "ts", "sigma", "eps", "rho", "attackk"}
	sort.Strings(names)
	return names
}
