package scenario

import (
	"sort"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/harness"
	"repro/internal/simnet"
)

// Library returns the canned scenarios in definition order — the named
// regimes every protocol is expected to survive. Each is a plain Spec;
// callers may copy one and tweak fields (the sweep subcommand does).
func Library() []Spec {
	return []Spec{
		baselineSynchronous(),
		totalPartition(),
		splitBrainUntilTS(),
		flakyMinority(),
		lossBurstRecovery(),
		slowCoordinator(),
		driftHeavy(),
		chaosMonkey(),
		dupReorderStorm(),
		groupChurn(),
		churnStorm(),
		obsoleteBallotReplay(),
		coordinatorAssassination(),
		restartLatecomer(),
		populationDynamics(),
	}
}

// Lookup finds a canned scenario by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the canned scenario names, sorted.
func Names() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// checksWithBound is the default invariant set plus the §4 latency bound —
// for scenarios whose fault schedule respects the bound's premises (no
// failures after TS).
func checksWithBound() []Check {
	return append(DefaultChecks(), LatencyBound{})
}

func baselineSynchronous() Spec {
	return Spec{
		Name:            "baseline-synchronous",
		Description:     "stable from time zero: the best case every other scenario degrades from",
		StableFromStart: true,
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.Synchronous{}
		},
		Checks: append(checksWithBound(), MessageBudget{MaxTotal: 20000}),
	}
}

func totalPartition() Spec {
	return Spec{
		Name:        "total-partition",
		Description: "every pre-TS message is lost — the Ω(δ) lower-bound regime",
		// Net nil: the harness default (DropAll) is exactly this regime.
		Checks: checksWithBound(),
	}
}

func splitBrainUntilTS() Spec {
	return Spec{
		Name:        "split-brain-until-TS",
		Description: "two-way partition healing exactly at TS; each side is internally synchronous",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.PartitionUntilTS{Group: simnet.SplitBrain(n)}
		},
		Checks: checksWithBound(),
	}
}

func flakyMinority() Spec {
	return Spec{
		Name:        "flaky-minority",
		Description: "the minority side loses 70% of its pre-TS traffic; the majority is healthy",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			targets := make(map[consensus.ProcessID]bool)
			for _, id := range MinorityUp(n) {
				targets[id] = true
			}
			return simnet.LossBurst{DropProb: 0.7, Targets: targets}
		},
		Checks: checksWithBound(),
	}
}

func lossBurstRecovery() Spec {
	return Spec{
		Name:        "loss-burst",
		Description: "healthy pre-TS network with a total black-out for the last TS/2 before stabilization",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.LossBurst{From: ts / 2, To: ts}
		},
		Checks: checksWithBound(),
	}
}

func slowCoordinator() Spec {
	return Spec{
		Name:        "slow-coordinator",
		Description: "process 0 (the eventual leader / round-0 coordinator) has a 3δ pre-TS link",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.TargetedDelay{
				Targets: map[consensus.ProcessID]bool{0: true},
				Delay:   3 * delta,
			}
		},
		Checks: checksWithBound(),
	}
}

func driftHeavy() Spec {
	return Spec{
		Name:        "drift-heavy",
		Description: "clocks pinned at the edges of the ρ=10% band with multi-δ offsets, total partition until TS",
		Clocks: ClockProfile{
			Rho:          0.10,
			Extremes:     true,
			OffsetDeltas: []float64{0, 7, -3, 11, -8},
		},
		Checks: checksWithBound(),
	}
}

func chaosMonkey() Spec {
	return Spec{
		Name:        "chaos-monkey",
		Description: "every pre-TS message dropped with p=0.5 or delayed up to 2·TS (obsolete-message soup)",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.Chaos{DropProb: 0.5}
		},
		Checks: checksWithBound(),
	}
}

func dupReorderStorm() Spec {
	return Spec{
		Name:        "dup-reorder-storm",
		Description: "pre-TS messages lose FIFO order (4δ jitter) and re-deliver probabilistically — idempotence under Byzantine-flavored links",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.Reorder{
				Base: simnet.Duplicate{
					Prob: 0.4, MaxExtra: 2,
					Base: simnet.Chaos{DropProb: 0.2},
				},
			}
		},
		Checks: checksWithBound(),
	}
}

func groupChurn() Spec {
	return Spec{
		Name:        "group-churn",
		Description: "pre-TS partition reshuffled every 4δ along random cut lines — quorums form and dissolve until stabilization",
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.GroupChurn{Groups: 2, Period: 4 * delta, Seed: 42}
		},
		Checks: checksWithBound(),
	}
}

func churnStorm() Spec {
	return Spec{
		Name:        "churn-storm",
		Description: "staggered crash/restart churn after TS (a majority stays up throughout)",
		Faults: []Fault{
			CrashRestart{Proc: 3, Crash: AfterTS(1), Restart: AfterTS(5)},
			CrashRestart{Proc: 4, Crash: AfterTS(3), Restart: AfterTS(8)},
			CrashRestart{Proc: 1, Crash: AfterTS(6), Restart: AfterTS(10)},
		},
		// Post-TS failures void the ε+3τ+5δ premise; safety must still hold.
		Checks: DefaultChecks(),
	}
}

func obsoleteBallotReplay() Spec {
	return Spec{
		Name:        "obsolete-ballot-replay",
		Description: "adaptive release of obsolete high ballots (§2 attack) vs the session cap (§4)",
		Protocols:   []harness.Protocol{harness.TraditionalPaxos, harness.ModifiedPaxos},
		Adversary:   AdversaryProfile{Attack: harness.ObsoleteBallots},
		// Worst-case delivery makes the O(Nδ) shape sharpest.
		WorstCaseDelays: true,
		Checks:          checksWithBound(),
	}
}

func coordinatorAssassination() Spec {
	return Spec{
		Name:        "coordinator-assassination",
		Description: "the first post-TS round's coordinator (or leading session's owner) is killed as its round begins",
		Protocols: []harness.Protocol{
			harness.ModifiedPaxos, harness.RoundBased, harness.ModifiedBConsensus,
		},
		Faults: []Fault{
			AssassinateOnSeries{Series: "round", AfterTS: true, Victim: VictimRoundOwner, RestartAfter: 6},
			AssassinateOnSeries{Series: "session", AfterTS: true, Victim: VictimEmitter, RestartAfter: 6},
		},
		// The post-TS kill voids the ε+3τ+5δ premise, but the revived
		// victim must still catch up in O(δ).
		Checks: append(DefaultChecks(), RecoveryBound{MaxDeltas: 20}),
	}
}

func populationDynamics() Spec {
	return Spec{
		Name:        "population-dynamics",
		Description: "the O(log n) gossip family at n=1000: usd, 3-majority, and 2-choices over a two-opinion population",
		// The dynamics protocols are hidden (they answer a different question
		// than the paper's latency-bound family), so they must be named
		// explicitly — a defaulted protocol set would never include them.
		Protocols:       []harness.Protocol{"usd", "3majority", "2choices"},
		N:               1000,
		StableFromStart: true,
		// A two-opinion population is the regime the O(log n) convergence
		// theory addresses; n distinct proposals would never self-amplify.
		OpinionPool: 2,
		// Three seeds keep `run all` at population scale affordable; the
		// sweep CLI widens the matrix when the scaling question is asked.
		Seeds: 3,
		// No latency-bound check: the dynamics family promises O(log n)
		// rounds, not decision by TS + ε + 3τ + 5δ.
		Checks: DefaultChecks(),
	}
}

func restartLatecomer() Spec {
	return Spec{
		Name:        "restart-latecomer",
		Description: "a process crashes before TS and returns 30δ after everyone decided; it must catch up in O(δ)",
		Faults: []Fault{
			CrashRestart{Proc: 4, Crash: Rel{FromTS: true, Deltas: -10}, Restart: AfterTS(30)},
		},
		Checks: append(DefaultChecks(), RecoveryBound{MaxDeltas: 20}),
	}
}
