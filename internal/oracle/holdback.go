// Package oracle implements the message-delivery oracle of §5: broadcast
// messages are timestamped with Lamport logical clocks, and each process
// holds a received message for 2δ before delivering it, delivering in
// (timestamp, sender) order.
//
// Why this works after stabilization (the paper's argument): a message m
// sent when the system is stable reaches every nonfaulty process within δ,
// after which every message anyone sends carries a higher timestamp.
// Waiting 2δ after receipt therefore guarantees the process has already
// received every message with a lower timestamp that was sent after
// stabilization — so all processes deliver the same set of messages in the
// same (timestamp, sender) order.
//
// The package provides the per-process hold-back queue; the consensus
// algorithm (internal/core/bconsensus) owns the Lamport clock and feeds
// received oracle messages in.
package oracle

import (
	"sort"
	"time"
)

// Item is one held message awaiting oracle delivery.
type Item struct {
	// TS is the sender's Lamport timestamp.
	TS uint64
	// Sender breaks timestamp ties; (TS, Sender) totally orders oracle
	// messages because a sender never reuses a timestamp.
	Sender int
	// ReadyAt is the local-clock time at which the hold-back expires
	// (receipt time + the hold-back duration).
	ReadyAt time.Duration
	// Payload is the protocol message being ordered.
	Payload any
}

// less is the oracle delivery order.
func less(a, b Item) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.Sender < b.Sender
}

// Holdback is the per-process hold-back queue. It is not safe for
// concurrent use; each process owns one and drives it from its event loop.
//
// The zero value is an empty queue ready for use.
type Holdback struct {
	items     []Item // sorted by (TS, Sender)
	delivered int    // count of delivered messages (for tests/metrics)
}

// Add inserts a received message. Duplicates — same (TS, Sender) — are
// ignored, which makes retransmission through the oracle idempotent.
func (h *Holdback) Add(it Item) {
	i := sort.Search(len(h.items), func(i int) bool { return !less(h.items[i], it) })
	if i < len(h.items) && h.items[i].TS == it.TS && h.items[i].Sender == it.Sender {
		return
	}
	h.items = append(h.items, Item{})
	copy(h.items[i+1:], h.items[i:])
	h.items[i] = it
}

// Ready pops and returns, in delivery order, the prefix of held messages
// whose hold-back has expired at local time now. Delivery stops at the
// first unexpired message even if later ones have expired: delivering
// around it would violate timestamp order.
func (h *Holdback) Ready(now time.Duration) []Item {
	n := 0
	for n < len(h.items) && h.items[n].ReadyAt <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]Item, n)
	copy(out, h.items[:n])
	h.items = h.items[:copy(h.items, h.items[n:])]
	h.delivered += n
	return out
}

// NextDeadline returns the earliest hold-back expiry among messages that
// head the queue, and false if the queue is empty. The owner arms a timer
// for this time and calls Ready when it fires.
//
// Note this is the expiry of the queue head specifically: a later message
// with an earlier deadline cannot be delivered before the head anyway.
func (h *Holdback) NextDeadline() (time.Duration, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].ReadyAt, true
}

// Len returns the number of held (undelivered) messages.
func (h *Holdback) Len() int { return len(h.items) }

// Delivered returns the total number of messages delivered so far.
func (h *Holdback) Delivered() int { return h.delivered }
