package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func item(ts uint64, sender int, readyAt time.Duration) Item {
	return Item{TS: ts, Sender: sender, ReadyAt: readyAt, Payload: nil}
}

func TestDeliversInTimestampOrder(t *testing.T) {
	var h Holdback
	h.Add(item(3, 0, 10))
	h.Add(item(1, 2, 10))
	h.Add(item(2, 1, 10))
	got := h.Ready(10)
	if len(got) != 3 {
		t.Fatalf("delivered %d, want 3", len(got))
	}
	if got[0].TS != 1 || got[1].TS != 2 || got[2].TS != 3 {
		t.Fatalf("wrong order: %+v", got)
	}
}

func TestSenderBreaksTies(t *testing.T) {
	var h Holdback
	h.Add(item(5, 3, 0))
	h.Add(item(5, 1, 0))
	got := h.Ready(0)
	if got[0].Sender != 1 || got[1].Sender != 3 {
		t.Fatalf("tie not broken by sender: %+v", got)
	}
}

func TestUnexpiredHeadBlocksExpiredTail(t *testing.T) {
	var h Holdback
	h.Add(item(1, 0, 100)) // small ts, late expiry
	h.Add(item(2, 1, 10))  // large ts, early expiry
	if got := h.Ready(50); got != nil {
		t.Fatalf("delivered %+v before head expiry", got)
	}
	if d, ok := h.NextDeadline(); !ok || d != 100 {
		t.Fatalf("NextDeadline = %v, %v; want 100, true", d, ok)
	}
	got := h.Ready(100)
	if len(got) != 2 || got[0].TS != 1 {
		t.Fatalf("expected both in order at 100, got %+v", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	var h Holdback
	h.Add(item(7, 2, 10))
	h.Add(item(7, 2, 999)) // duplicate (TS, Sender): ignored entirely
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	got := h.Ready(10)
	if len(got) != 1 || got[0].ReadyAt != 10 {
		t.Fatalf("duplicate replaced original: %+v", got)
	}
}

func TestEmptyQueue(t *testing.T) {
	var h Holdback
	if got := h.Ready(time.Hour); got != nil {
		t.Fatalf("Ready on empty = %+v", got)
	}
	if _, ok := h.NextDeadline(); ok {
		t.Fatal("NextDeadline on empty should report false")
	}
	if h.Delivered() != 0 || h.Len() != 0 {
		t.Fatal("empty queue counts should be zero")
	}
}

func TestDeliveredCounter(t *testing.T) {
	var h Holdback
	for i := 0; i < 5; i++ {
		h.Add(item(uint64(i+1), 0, time.Duration(i)))
	}
	h.Ready(2)
	if h.Delivered() != 3 || h.Len() != 2 {
		t.Fatalf("Delivered=%d Len=%d, want 3,2", h.Delivered(), h.Len())
	}
	h.Ready(time.Hour)
	if h.Delivered() != 5 || h.Len() != 0 {
		t.Fatalf("Delivered=%d Len=%d, want 5,0", h.Delivered(), h.Len())
	}
}

// Property: regardless of arrival order, total delivery order is by
// (TS, Sender), and every message is delivered exactly once.
func TestQuickTotalOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		var h Holdback
		type key struct {
			ts     uint64
			sender int
		}
		want := map[key]bool{}
		for i := 0; i < n; i++ {
			it := item(uint64(rng.Intn(20)), rng.Intn(5), time.Duration(rng.Intn(50)))
			k := key{it.TS, it.Sender}
			if !want[k] {
				want[k] = true
			}
			h.Add(it)
		}
		var all []Item
		for now := time.Duration(0); now <= 50; now++ {
			all = append(all, h.Ready(now)...)
		}
		if len(all) != len(want) {
			return false
		}
		for i := 1; i < len(all); i++ {
			if !less(all[i-1], all[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the paper's 2δ argument — if every message is held for 2δ and
// any message with a smaller timestamp arrives within δ of the first, the
// delivery sequences at two independent queues with different arrival
// orders are identical.
func TestQuickSameOrderAcrossProcesses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const hold = 20 // "2δ" with δ=10
		type msg struct {
			ts     uint64
			sender int
			sentAt int
		}
		var msgs []msg
		for i := 0; i < 20; i++ {
			sentAt := rng.Intn(100)
			msgs = append(msgs, msg{ts: uint64(sentAt), sender: rng.Intn(5), sentAt: sentAt})
		}
		deliverAll := func(arrivalJitter func() int) []Item {
			var h Holdback
			var out []Item
			// Arrival time = sentAt + jitter(≤δ); ReadyAt = arrival+2δ.
			type arr struct {
				at time.Duration
				it Item
			}
			var arrivals []arr
			for _, m := range msgs {
				at := time.Duration(m.sentAt + arrivalJitter())
				arrivals = append(arrivals, arr{at, Item{TS: m.ts, Sender: m.sender, ReadyAt: at + hold}})
			}
			for now := time.Duration(0); now < 300; now++ {
				for _, a := range arrivals {
					if a.at == now {
						h.Add(a.it)
					}
				}
				out = append(out, h.Ready(now)...)
			}
			return out
		}
		j1 := rand.New(rand.NewSource(seed + 1))
		j2 := rand.New(rand.NewSource(seed + 2))
		a := deliverAll(func() int { return j1.Intn(10) })
		b := deliverAll(func() int { return j2.Intn(10) })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].TS != b[i].TS || a[i].Sender != b[i].Sender {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
