package main

import "testing"

func TestRunMemTransport(t *testing.T) {
	err := run([]string{"-n", "3", "-delta", "10ms", "-unstable", "50ms", "-loss", "0.3", "-timeout", "30s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTCP(t *testing.T) {
	err := run([]string{"-n", "3", "-delta", "10ms", "-tcp", "-timeout", "30s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBConsensus(t *testing.T) {
	err := run([]string{"-protocol", "bconsensus", "-n", "3", "-delta", "10ms", "-unstable", "30ms", "-timeout", "30s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "paxos"}); err == nil {
		t.Fatal("traditional paxos needs the simulated oracle; livedemo must refuse")
	}
}
