// Command livedemo runs a live goroutine cluster — real time, real timers,
// optionally real TCP — through an unstable period followed by
// stabilization, and reports when each process decides.
//
// Usage (protocols are enumerated from the registry; any registered
// protocol that does not need the simulator's leader oracle is accepted):
//
//	livedemo [-protocol modpaxos|roundbased|bconsensus] [-n 5]
//	         [-delta 20ms] [-unstable 300ms] [-loss 0.5] [-tcp]
//
// This is the "eventual synchrony in the wild" demo: for the first
// -unstable period the in-memory network drops and delays messages
// arbitrarily; afterwards it delivers within δ. With -tcp the cluster runs
// over loopback TCP with gob-encoded messages instead (no injected faults —
// the kernel is the network).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/live"
	"repro/internal/protocol"
)

// liveProtocols enumerates the registered protocols the live runtime can
// run — every visible descriptor that does not need the simulator's leader
// oracle.
func liveProtocols() string {
	var names []string
	for _, d := range protocol.Visible() {
		if !d.NeedsLeaderOracle {
			names = append(names, d.Name)
		}
	}
	return strings.Join(names, ", ")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "livedemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("livedemo", flag.ContinueOnError)
	var (
		proto    = fs.String("protocol", "modpaxos", "protocol: "+liveProtocols())
		n        = fs.Int("n", 5, "number of processes")
		delta    = fs.Duration("delta", 20*time.Millisecond, "δ (live delivery bound)")
		unstable = fs.Duration("unstable", 300*time.Millisecond, "duration of the pre-stabilization period")
		loss     = fs.Float64("loss", 0.5, "pre-stabilization loss probability")
		useTCP   = fs.Bool("tcp", false, "run over loopback TCP instead of channels")
		timeout  = fs.Duration("timeout", 30*time.Second, "give up after this long")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := protocol.Get(*proto)
	if err != nil {
		return fmt.Errorf("unknown protocol %q (live-capable: %s)", *proto, liveProtocols())
	}
	if d.NeedsLeaderOracle {
		return fmt.Errorf("%q needs the simulator's leader oracle; use consensus-sim (live-capable: %s)", *proto, liveProtocols())
	}
	factory, err := d.Build(protocol.Params{Delta: *delta})
	if err != nil {
		return err
	}

	proposals := make([]consensus.Value, *n)
	ids := make([]consensus.ProcessID, *n)
	for i := range proposals {
		proposals[i] = consensus.Value(fmt.Sprintf("value-from-p%d", i))
		ids[i] = consensus.ProcessID(i)
	}

	var transport live.Transport
	if *useTCP {
		tcp, err := live.NewTCPTransport(ids)
		if err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Printf("p%d listening on %s\n", id, tcp.Addr(id))
		}
		transport = tcp
	} else {
		transport = live.NewMemTransport(live.MemTransportConfig{
			MaxDelay:       *delta,
			StabilizeAfter: *unstable,
			LossProb:       *loss,
		})
		fmt.Printf("unstable for %v (loss %.0f%%), then stable with δ=%v\n", *unstable, *loss*100, *delta)
	}

	cluster, err := live.NewCluster(live.Config{N: *n, Delta: *delta, Transport: transport}, factory, proposals)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Stop() }()

	start := time.Now()
	cluster.Start()
	if err := cluster.WaitAllDecided(*timeout); err != nil {
		return err
	}
	elapsed := time.Since(start)

	decisions := cluster.Checker().Decisions()
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].At < decisions[j].At })
	for _, d := range decisions {
		fmt.Printf("p%d decided %q at +%v\n", d.Proc, d.Value, d.At.Round(time.Millisecond))
	}
	fmt.Printf("all %d processes decided in %v (%.1fδ); %d messages sent\n",
		*n, elapsed.Round(time.Millisecond), float64(elapsed)/float64(*delta),
		cluster.Collector().TotalSent())
	return nil
}
