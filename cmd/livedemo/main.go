// Command livedemo runs a live goroutine cluster — real time, real timers,
// optionally real TCP — through an unstable period followed by
// stabilization, and reports decision latency against the wall-clock
// stabilization instant.
//
// It is a thin wrapper over the scenario engine's live backend: the flags
// assemble one canned Spec (a chaotic pre-TS network healing at -unstable)
// and hand it to scenario.Run on the `live` or `live-tcp` backend, so the
// demo exercises exactly the machinery `scenario run -backend live` uses.
//
// Usage (protocols are enumerated from the registry; any registered
// protocol that does not need the simulator's leader oracle is accepted):
//
//	livedemo [-protocol modpaxos|roundbased|bconsensus] [-n 5]
//	         [-delta 20ms] [-unstable 300ms] [-loss 0.5] [-seed 1] [-tcp]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// liveProtocols enumerates the registered protocols the live runtime can
// run — every visible descriptor that does not need the simulator's leader
// oracle.
func liveProtocols() string {
	var names []string
	for _, d := range protocol.Visible() {
		if !d.NeedsLeaderOracle {
			names = append(names, d.Name)
		}
	}
	return strings.Join(names, ", ")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "livedemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("livedemo", flag.ContinueOnError)
	var (
		proto    = fs.String("protocol", "modpaxos", "protocol: "+liveProtocols())
		n        = fs.Int("n", 5, "number of processes")
		delta    = fs.Duration("delta", 20*time.Millisecond, "δ (live delivery bound)")
		unstable = fs.Duration("unstable", 300*time.Millisecond, "duration of the pre-stabilization period (the wall-clock TS)")
		loss     = fs.Float64("loss", 0.5, "pre-stabilization loss probability")
		seed     = fs.Int64("seed", 1, "fault-injection seed (fates are reproducible per seed)")
		useTCP   = fs.Bool("tcp", false, "run over loopback TCP instead of channels")
		timeout  = fs.Duration("timeout", 30*time.Second, "give up after this long")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := protocol.Get(*proto)
	if err != nil {
		return fmt.Errorf("unknown protocol %q (live-capable: %s)", *proto, liveProtocols())
	}
	if d.NeedsLeaderOracle {
		return fmt.Errorf("%q needs the simulator's leader oracle; use consensus-sim (live-capable: %s)", *proto, liveProtocols())
	}

	backend := scenario.BackendLive
	if *useTCP {
		backend = scenario.BackendLiveTCP
	}
	lossPct := *loss
	spec := scenario.Spec{
		Name: "livedemo",
		Description: fmt.Sprintf("unstable for %v (%.0f%% loss, delays up to 2·TS), then stable with δ=%v",
			*unstable, lossPct*100, *delta),
		Backend:         backend,
		Protocols:       []harness.Protocol{harness.Protocol(*proto)},
		N:               *n,
		Delta:           *delta,
		TS:              *unstable,
		StableFromStart: *unstable == 0,
		Net: func(n int, delta, ts time.Duration) simnet.Policy {
			return simnet.Chaos{DropProb: lossPct}
		},
		Seeds:    1,
		BaseSeed: *seed,
		Horizon:  *timeout,
	}
	rep, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	fmt.Print(rep.Text())
	if !rep.Passed() {
		return fmt.Errorf("%d invariant violation(s)", len(rep.Violations))
	}
	return nil
}
