package main

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestRunModifiedPaxos(t *testing.T) {
	err := run([]string{"-protocol", "modpaxos", "-n", "3", "-ts", "50ms", "-horizon", "10s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAttackAndRestart(t *testing.T) {
	err := run([]string{
		"-protocol", "paxos", "-n", "5", "-ts", "50ms",
		"-attack", "obsolete", "-k", "2", "-worstcase",
		"-restart", "2@10ms:200ms",
		"-horizon", "30s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSynchronousPolicyDecidesBeforeTS(t *testing.T) {
	// The sync policy lets the cluster decide before TS; routed through the
	// scenario engine, the run must still succeed (the latency metric
	// clamps to zero rather than failing any check).
	err := run([]string{"-protocol", "modpaxos", "-n", "3", "-policy", "sync", "-ts", "1s", "-horizon", "10s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-protocol", "nope"},
		{"-policy", "nope"},
		{"-attack", "nope"},
		{"-restart", "garbage"},
		{"-restart", "1@nope:2ms"},
		{"-restart", "x@1ms:2ms"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestParseRestarts(t *testing.T) {
	rs, err := parseRestarts("4@100ms:600ms,2@50ms:never")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d restarts", len(rs))
	}
	if rs[0] != (harness.Restart{Proc: 4, CrashAt: 100e6, RestartAt: 600e6}) {
		t.Fatalf("rs[0] = %+v", rs[0])
	}
	if rs[1].RestartAt != 0 {
		t.Fatalf("never-restart should have zero RestartAt: %+v", rs[1])
	}
	if rs, err := parseRestarts(""); err != nil || rs != nil {
		t.Fatal("empty schedule should be nil, nil")
	}
}

func TestReportIncludesBound(t *testing.T) {
	// report writes to stdout; just ensure the helpers don't panic and
	// the restart string round-trips reasonably.
	if !strings.Contains("proc@crash:restart", "@") {
		t.Fatal("sanity")
	}
}
