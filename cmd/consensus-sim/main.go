// Command consensus-sim runs a single simulated consensus experiment and
// prints its outcome, timing, and message accounting. It is a thin shell
// over the scenario engine: the flags assemble a one-seed scenario.Spec, so
// a consensus-sim invocation measures exactly what `scenario run` and the
// grid sweeps measure.
//
// Usage (any protocol name registered with internal/protocol is accepted,
// including hidden ablation variants such as modpaxos-norule):
//
//	consensus-sim [-protocol modpaxos|paxos|roundbased|bconsensus]
//	              [-n 5] [-delta 10ms] [-ts 200ms] [-rho 0.01]
//	              [-sigma 0] [-eps 0] [-seed 1]
//	              [-attack none|obsolete|deadcoords] [-k 0]
//	              [-policy dropall|chaos|sync] [-drop 0.5]
//	              [-restart "proc@crash:restart"] [-worstcase] [-v]
//
// Examples:
//
//	# The headline contrast: traditional Paxos vs the paper's algorithm
//	# under 8 obsolete ballots.
//	consensus-sim -protocol paxos    -n 17 -attack obsolete -k 8 -worstcase
//	consensus-sim -protocol modpaxos -n 17 -attack obsolete -k 8 -worstcase
//
//	# A process crashes before TS and restarts 400ms after it.
//	consensus-sim -protocol modpaxos -restart "4@100ms:600ms"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core/consensus"
	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// protocolNames enumerates the registered protocols for the flag help and
// error messages (hidden ablation variants still resolve by name).
func protocolNames() string {
	var names []string
	for _, d := range protocol.Visible() {
		names = append(names, d.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("consensus-sim", flag.ContinueOnError)
	var (
		proto     = fs.String("protocol", "modpaxos", "protocol: "+protocolNames())
		n         = fs.Int("n", 5, "number of processes")
		delta     = fs.Duration("delta", 10*time.Millisecond, "δ")
		ts        = fs.Duration("ts", 200*time.Millisecond, "stabilization time TS")
		rho       = fs.Float64("rho", 0.01, "clock-rate error bound ρ")
		sigma     = fs.Duration("sigma", 0, "σ (modpaxos; 0 = default)")
		eps       = fs.Duration("eps", 0, "ε (modpaxos/bconsensus; 0 = default)")
		seed      = fs.Int64("seed", 1, "random seed")
		attack    = fs.String("attack", "none", "adversary: none, obsolete, deadcoords")
		k         = fs.Int("k", 0, "attack strength")
		policy    = fs.String("policy", "dropall", "pre-TS policy: dropall, chaos, sync")
		dropProb  = fs.Float64("drop", 0.5, "chaos policy drop probability")
		restart   = fs.String("restart", "", "crash/restart schedule \"proc@crash:restart\" (comma separated)")
		worstCase = fs.Bool("worstcase", false, "every post-TS delivery takes exactly δ")
		prepared  = fs.Bool("prepared", false, "stable-state fast path (modpaxos)")
		verbose   = fs.Bool("v", false, "print the session/round time series")
		horizon   = fs.Duration("horizon", 2*time.Minute, "virtual-time budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The flags describe a one-seed scenario; the run itself goes through
	// the same engine as `scenario run` and the grid sweeps.
	spec := scenario.Spec{
		Name:      "consensus-sim",
		Protocols: []harness.Protocol{harness.Protocol(*proto)},
		N:         *n, Delta: *delta, TS: *ts,
		Sigma: *sigma, Eps: *eps,
		StableFromStart: *ts == 0,
		Clocks:          scenario.ClockProfile{Rho: *rho},
		WorstCaseDelays: *worstCase,
		Prepared:        *prepared,
		Seeds:           1, BaseSeed: *seed,
		Horizon:  *horizon,
		KeepRuns: true,
	}
	switch harness.AttackKind(*attack) {
	case harness.NoAttack:
	case harness.ObsoleteBallots, harness.DeadCoordinators:
		if *k > 0 {
			spec.Adversary = scenario.AdversaryProfile{Attack: harness.AttackKind(*attack), K: *k}
		}
	default:
		return fmt.Errorf("unknown attack %q", *attack)
	}
	var pol simnet.Policy
	switch *policy {
	case "dropall":
		pol = simnet.DropAll{}
	case "chaos":
		pol = simnet.Chaos{DropProb: *dropProb}
	case "sync":
		pol = simnet.Synchronous{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	spec.Net = func(n int, delta, ts time.Duration) simnet.Policy { return pol }

	restarts, err := parseRestarts(*restart)
	if err != nil {
		return err
	}
	for _, r := range restarts {
		f := scenario.CrashRestart{Proc: int(r.Proc), Crash: scenario.AtAbs(r.CrashAt)}
		if r.RestartAt > 0 {
			f.Restart = scenario.AtAbs(r.RestartAt)
		}
		spec.Faults = append(spec.Faults, f)
	}

	rep, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	one := rep.Runs()[0]
	report(one.Cfg, one.Res, *verbose)
	if one.Res.Violation != nil {
		return fmt.Errorf("SAFETY VIOLATION: %w", one.Res.Violation)
	}
	if !one.Res.Decided {
		return fmt.Errorf("cluster did not decide within %v", *horizon)
	}
	return nil
}

// parseRestarts parses "proc@crash:restart" entries such as "4@100ms:600ms".
func parseRestarts(s string) ([]harness.Restart, error) {
	if s == "" {
		return nil, nil
	}
	var out []harness.Restart
	for _, part := range strings.Split(s, ",") {
		procStr, times, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("restart %q: want proc@crash:restart", part)
		}
		proc, err := strconv.Atoi(procStr)
		if err != nil {
			return nil, fmt.Errorf("restart %q: bad process id: %w", part, err)
		}
		crashStr, restartStr, ok := strings.Cut(times, ":")
		if !ok {
			return nil, fmt.Errorf("restart %q: want proc@crash:restart", part)
		}
		crash, err := time.ParseDuration(crashStr)
		if err != nil {
			return nil, fmt.Errorf("restart %q: bad crash time: %w", part, err)
		}
		var back time.Duration
		if restartStr != "" && restartStr != "never" {
			back, err = time.ParseDuration(restartStr)
			if err != nil {
				return nil, fmt.Errorf("restart %q: bad restart time: %w", part, err)
			}
		}
		out = append(out, harness.Restart{Proc: consensus.ProcessID(proc), CrashAt: crash, RestartAt: back})
	}
	return out, nil
}

func report(cfg harness.Config, res harness.Result, verbose bool) {
	fmt.Printf("protocol   %s  (n=%d δ=%v TS=%v seed=%d)\n", cfg.Protocol, cfg.N, cfg.Delta, cfg.TS, cfg.Seed)
	if cfg.Attack != "" && cfg.Attack != harness.NoAttack {
		fmt.Printf("adversary  %s k=%d\n", cfg.Attack, cfg.AttackK)
	}
	fmt.Printf("decided    %v  value=%q\n", res.Decided, res.Value)
	fmt.Printf("first decision  %v\n", res.FirstDecision)
	fmt.Printf("last decision   %v  (%s after TS)\n", res.LastDecision, trace.InDelta(res.LatencyAfterTS, cfg.Delta))
	if d, err := protocol.Get(string(cfg.Protocol)); err == nil && d.DecisionBound != nil {
		if bound, err := d.DecisionBound(cfg.Params()); err == nil {
			fmt.Printf("paper bound     ε+3τ+5δ = %v (%s)\n", bound, trace.InDelta(bound, cfg.Delta))
		}
	}
	for proc, rec := range res.RestartRecovery {
		fmt.Printf("restart    p%d decided %v after restart (%s)\n", proc, rec, trace.InDelta(rec, cfg.Delta))
	}
	fmt.Printf("messages   %d total\n", res.Messages)
	fmt.Print(res.Collector.MessageReport())
	if verbose {
		for _, name := range res.Collector.SeriesNames() {
			fmt.Printf("series %s:\n", name)
			for _, s := range res.Collector.Series(name) {
				fmt.Printf("  %10v  p%-2d  %d\n", s.At, s.Proc, s.Value)
			}
		}
	}
}
