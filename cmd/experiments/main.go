// Command experiments regenerates every experiment table and figure of the
// reproduction and writes them as markdown (EXPERIMENTS.md format) or plain
// text.
//
// Usage:
//
//	experiments [-seeds N] [-delta D] [-ts D] [-format md|text] [-o FILE] [-only "Table 1"]
//
// With -o, the output file is written atomically; without it, tables go to
// stdout. Runs are deterministic: the same flags always produce the same
// tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		seeds  = fs.Int("seeds", 5, "independent runs per configuration")
		delta  = fs.Duration("delta", 10*time.Millisecond, "δ, the post-stabilization delivery bound")
		ts     = fs.Duration("ts", 200*time.Millisecond, "stabilization time TS")
		rho    = fs.Float64("rho", 0.01, "clock-rate error bound ρ")
		format = fs.String("format", "md", "output format: md or text")
		out    = fs.String("o", "", "output file (default stdout)")
		only   = fs.String("only", "", "run only the experiment with this ID (e.g. \"Table 5\")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "md" && *format != "text" {
		return fmt.Errorf("unknown format %q", *format)
	}

	p := experiments.Params{Delta: *delta, TS: *ts, Seeds: *seeds, Rho: *rho}
	tables, err := experiments.All(p)
	if err != nil {
		return err
	}

	var b strings.Builder
	if *format == "md" {
		writeHeader(&b, p)
	}
	matched := false
	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		matched = true
		if *format == "md" {
			b.WriteString(t.Markdown())
		} else {
			b.WriteString(t.String())
		}
		b.WriteString("\n")
	}
	if *only != "" && !matched {
		return fmt.Errorf("no experiment with ID %q", *only)
	}

	if *out == "" {
		fmt.Print(b.String())
		return nil
	}
	tmp := *out + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, *out)
}

func writeHeader(b *strings.Builder, p experiments.Params) {
	fmt.Fprintf(b, `# Experiments: paper vs measured

Reproduction of every claim in *How Fast Can Eventual Synchrony Lead to
Consensus?* (Dutta, Guerraoui, Lamport, DSN 2005). The paper is analytic —
it reports bounds, not measured tables — so each experiment below states
the paper's predicted shape and the shape measured on this repository's
simulator. Absolute numbers depend on the simulator's delay model (delivery
uniform in (0, δ] after TS unless stated); the *shapes* — who is O(δ), who
is O(Nδ), where the bound sits — are the reproduction targets.

Parameters: δ=%v, TS=%v, ρ=%.2f, %d seeds per configuration.
Regenerate with: go run ./cmd/experiments -o EXPERIMENTS.md

`, p.Delta, p.TS, p.Rho, p.Seeds)
}
