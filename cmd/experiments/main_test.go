package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTableToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "exp.md")
	err := run([]string{"-seeds", "1", "-only", "Table 6", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "### Table 6") {
		t.Fatalf("output missing Table 6:\n%s", s)
	}
	if strings.Contains(s, "### Table 1 ") {
		t.Fatal("-only leaked other tables")
	}
}

func TestRunTextFormat(t *testing.T) {
	if err := run([]string{"-seeds", "1", "-only", "Table 6", "-format", "text"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-format", "nope"}); err == nil {
		t.Fatal("bad format accepted")
	}
	if err := run([]string{"-seeds", "1", "-only", "Table 99"}); err == nil {
		t.Fatal("unknown table accepted")
	}
}
