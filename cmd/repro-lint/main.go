// Command repro-lint runs the repository's domain static-analysis suite
// (internal/analysis) over the module and reports violations of the
// invariants the reproduction depends on:
//
//   - detlint:      determinism — no wall-clock, global math/rand, or
//     order-sensitive map iteration in simulator-facing packages
//   - hotlint:      no closures, interface boxing, fmt, or per-iteration
//     allocation in //repro:hotpath functions
//   - tracelint:    hot-reachable code uses the interned dense trace
//     counters, never the mutexed string-keyed slow path
//   - registrylint: handler type switches and Descriptor.Messages agree,
//     one visible descriptor per protocol package
//   - keylint:      Store.Put keys start with a prefix declared in the
//     internal/storage key registry
//
// Usage:
//
//	repro-lint [-json] [-list] [packages]
//
// Packages are import paths or ./...-style patterns relative to the module
// root; the default (and "./...") is every package in the module. Exit
// status is 1 when any diagnostic is reported, 2 on loader errors.
// Diagnostics print as
//
//	file:line:col: [analyzer] message
//
// and -json emits them as a JSON array for machine consumption.
// Suppressions (//repro:allow <analyzer> <reason>) and hot-path marks
// (//repro:hotpath) are documented in internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro-lint [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	paths, err := selectPackages(mod, flag.Args())
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := mod.Package(path)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, analysis.RunPackage(pkg, analysis.Analyzers())...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "repro-lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "repro-lint: %v\n", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// selectPackages expands the command-line package patterns against the
// module. Supported forms: none or "./..." (everything), "repro/...",
// an exact import path, a "./pkg" relative path, and "./pkg/..." prefixes.
func selectPackages(mod *analysis.Module, args []string) ([]string, error) {
	all, err := mod.PackageDirs()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		pattern := normalizePattern(mod.Path, arg)
		matched := false
		if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
		} else {
			for _, p := range all {
				if p == pattern {
					add(p)
					matched = true
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", arg)
		}
	}
	return out, nil
}

// normalizePattern rewrites ./-relative patterns to import paths.
func normalizePattern(modPath, arg string) string {
	arg = strings.TrimSuffix(arg, "/")
	if arg == "." || arg == "./..." {
		return modPath + "/..."
	}
	if rest, ok := strings.CutPrefix(arg, "./"); ok {
		return modPath + "/" + rest
	}
	return arg
}
