package main

import (
	"bytes"
	"strings"
	"testing"
)

// capture runs the CLI with output buffered in memory and returns it.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestListShowsLibrary(t *testing.T) {
	out, err := capture(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(out), "\n") + 1
	if lines < 10 {
		t.Errorf("list shows %d scenarios, want ≥ 10:\n%s", lines, out)
	}
	for _, want := range []string{"split-brain-until-TS", "total-partition", "churn-storm"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunScenario(t *testing.T) {
	out, err := capture(t, "run", "-seeds", "1", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "violations: none") {
		t.Errorf("expected a clean report:\n%s", out)
	}
}

func TestRunFlagsAfterName(t *testing.T) {
	out, err := capture(t, "run", "baseline-synchronous", "-seeds", "1")
	if err != nil {
		t.Fatalf("flags after the name should parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "seeds=1") {
		t.Errorf("trailing -seeds flag was ignored:\n%s", out)
	}
	if _, err := capture(t, "run", "baseline-synchronous", "stray"); err == nil {
		t.Fatal("stray extra argument should fail")
	}
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, "run", "-seeds", "1", "-format", "json", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, `"scenario": "baseline-synchronous"`) {
		t.Errorf("expected JSON output:\n%s", out)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := capture(t, "run", "no-such-scenario"); err == nil {
		t.Fatal("unknown scenario should fail")
	}
}

func TestBadSubcommand(t *testing.T) {
	if _, err := capture(t, "frobnicate"); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
	if _, err := capture(t); err == nil {
		t.Fatal("missing subcommand should fail")
	}
}

func TestSweepSmallest(t *testing.T) {
	out, err := capture(t, "sweep", "-ns", "3", "-seeds", "1", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "sweep baseline-synchronous") || !strings.Contains(out, "modpaxos") {
		t.Errorf("unexpected sweep output:\n%s", out)
	}
}
