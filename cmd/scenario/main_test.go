package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with output buffered in memory and returns it.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestListShowsLibrary(t *testing.T) {
	out, err := capture(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(out), "\n") + 1
	if lines < 10 {
		t.Errorf("list shows %d scenarios, want ≥ 10:\n%s", lines, out)
	}
	for _, want := range []string{"split-brain-until-TS", "total-partition", "churn-storm"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunScenario(t *testing.T) {
	out, err := capture(t, "run", "-seeds", "1", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "violations: none") {
		t.Errorf("expected a clean report:\n%s", out)
	}
}

func TestRunFlagsAfterName(t *testing.T) {
	out, err := capture(t, "run", "baseline-synchronous", "-seeds", "1")
	if err != nil {
		t.Fatalf("flags after the name should parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "seeds=1") {
		t.Errorf("trailing -seeds flag was ignored:\n%s", out)
	}
	if _, err := capture(t, "run", "baseline-synchronous", "stray"); err == nil {
		t.Fatal("stray extra argument should fail")
	}
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, "run", "-seeds", "1", "-format", "json", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, `"scenario": "baseline-synchronous"`) {
		t.Errorf("expected JSON output:\n%s", out)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := capture(t, "run", "no-such-scenario"); err == nil {
		t.Fatal("unknown scenario should fail")
	}
}

func TestBadSubcommand(t *testing.T) {
	if _, err := capture(t, "frobnicate"); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
	if _, err := capture(t); err == nil {
		t.Fatal("missing subcommand should fail")
	}
}

func TestSweepSmallest(t *testing.T) {
	out, err := capture(t, "sweep", "-ns", "3", "-seeds", "1", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "grid baseline-synchronous") || !strings.Contains(out, "modpaxos") {
		t.Errorf("unexpected sweep output:\n%s", out)
	}
}

func TestSweepMultiAxis(t *testing.T) {
	// The acceptance shape: n, delta, and rho swept in one invocation,
	// rendered from the shared GridReport.
	out, err := capture(t, "sweep",
		"-axis", "n=3,5", "-axis", "delta=5ms,10ms", "-axis", "rho=0,0.05",
		"-seeds", "1", "-format", "csv", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2×2×2 cells × 4 visible protocols = 32 rows plus the header.
	if len(lines) != 1+32 {
		t.Fatalf("got %d CSV rows, want 32:\n%s", len(lines)-1, out)
	}
	// Every swept combination appears in the parameter columns.
	seen := make(map[string]bool)
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		seen[f[1]+"/"+f[2]+"/"+f[4]] = true
	}
	for _, want := range []string{"3/5000000/0", "5/10000000/0.05"} {
		if !seen[want] {
			t.Errorf("missing grid cell n/delta/rho=%s in:\n%s", want, out)
		}
	}
}

func TestSweepZipRequiresEqualAxes(t *testing.T) {
	if _, err := capture(t, "sweep", "-axis", "n=3,5", "-axis", "delta=5ms", "-zip",
		"-seeds", "1", "baseline-synchronous"); err == nil {
		t.Fatal("zipped axes of unequal length should fail")
	}
	out, err := capture(t, "sweep", "-axis", "n=3,5", "-axis", "delta=5ms,10ms", "-zip",
		"-seeds", "1", "-format", "csv", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// 2 zipped cells × 4 protocols + header.
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 1+8 {
		t.Fatalf("zip should produce 8 rows:\n%s", out)
	}
}

func TestSweepRejectsBadAxis(t *testing.T) {
	if _, err := capture(t, "sweep", "-axis", "warp=9", "baseline-synchronous"); err == nil {
		t.Fatal("unknown axis should fail")
	}
}

func TestListShowsProtocols(t *testing.T) {
	out, err := capture(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	// Match the name as a whole leading field, not a substring: "paxos"
	// must not pass just because "modpaxos" is listed.
	listed := func(name string) bool {
		for _, line := range strings.Split(out, "\n") {
			if f := strings.Fields(line); len(f) > 0 && f[0] == name {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"paxos", "modpaxos", "roundbased", "bconsensus", "modpaxos-norule"} {
		if !listed(want) {
			t.Errorf("list missing protocol %q:\n%s", want, out)
		}
	}
}

func TestSweepCSV(t *testing.T) {
	out, err := capture(t, "sweep", "-ns", "3", "-seeds", "1", "-format", "csv", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "scenario,n,delta_ns,ts_ns,rho,") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	// One row per (protocol) cell at N=3 for each visible protocol.
	if len(lines) != 1+4 {
		t.Fatalf("got %d CSV rows, want 4:\n%s", len(lines)-1, out)
	}
	for _, line := range lines[1:] {
		if fields := strings.Split(line, ","); len(fields) != 20 {
			t.Fatalf("row has %d fields, want 20: %q", len(fields), line)
		}
	}
}

func TestSweepJSON(t *testing.T) {
	out, err := capture(t, "sweep", "-ns", "3", "-seeds", "1", "-format", "json", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var grids []struct {
		Name  string   `json:"name"`
		Axes  []string `json:"axes"`
		Cells []struct {
			Report struct {
				Protocols []map[string]any `json:"protocols"`
			} `json:"report"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &grids); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(grids) != 1 || grids[0].Name != "baseline-synchronous" {
		t.Fatalf("unexpected grid list: %+v", grids)
	}
	if len(grids[0].Cells) != 1 || len(grids[0].Cells[0].Report.Protocols) != 4 {
		t.Fatalf("want 1 cell with 4 protocol reports: %+v", grids[0])
	}
}

func TestSweepRejectsUnknownFormat(t *testing.T) {
	if _, err := capture(t, "sweep", "-format", "xml", "baseline-synchronous"); err == nil {
		t.Fatal("unknown sweep format should fail")
	}
}

// TestRunLiveBackend is the CLI face of the tentpole: a canned regime on
// the live runtime, smoke-sized, emitting the same report schema.
func TestRunLiveBackend(t *testing.T) {
	out, err := capture(t, "run", "-backend", "live", "-short",
		"-n", "3", "-delta", "5ms", "-ts", "50ms", "total-partition")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "backend=live") || !strings.Contains(out, "violations: none") {
		t.Errorf("unexpected live report:\n%s", out)
	}
	// The defaulted protocol set on a live backend excludes the
	// oracle-needing baseline; whole-field match as in TestListShowsProtocols.
	for _, line := range strings.Split(out, "\n") {
		if f := strings.Fields(line); len(f) > 0 && f[0] == "paxos" {
			t.Errorf("live run included the simulator-only protocol:\n%s", out)
		}
	}
}

// TestRunLiveTCPBackend drives the same canned regime over real loopback
// sockets.
func TestRunLiveTCPBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock TCP scenario CLI test in -short mode")
	}
	out, err := capture(t, "run", "-backend", "live-tcp", "-short",
		"-n", "3", "-delta", "5ms", "-ts", "50ms", "-format", "json", "chaos-monkey")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var rep struct {
		Backend    string           `json:"backend"`
		Violations []map[string]any `json:"violations"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if rep.Backend != "live-tcp" || len(rep.Violations) != 0 {
		t.Errorf("unexpected live-tcp report: %+v\n%s", rep, out)
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	if _, err := capture(t, "run", "-backend", "warp", "-seeds", "1", "baseline-synchronous"); err == nil {
		t.Fatal("unknown backend should fail")
	}
}

// TestSweepFailFast pins the CLI wiring of Grid.FailFast on the clean
// path: every cell of a passing sweep still runs and nothing is marked
// truncated (the truncating path is pinned at the library level by
// TestGridFailFastStopsAtFirstViolatedCell).
func TestSweepFailFast(t *testing.T) {
	out, err := capture(t, "sweep", "-ns", "3,5", "-seeds", "1", "-failfast", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if strings.Contains(out, "fail-fast") {
		t.Errorf("clean fail-fast sweep must not be truncated:\n%s", out)
	}
	if !strings.Contains(out, "n=5") {
		t.Errorf("clean fail-fast sweep must run every cell:\n%s", out)
	}
}

// TestRunTimelineFlag smokes the -timeline exporter end to end: the file
// must be a valid Chrome trace with one pid per run and, for the
// round-based protocol, at least one round span on every node lane.
func TestRunTimelineFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.json")
	out, err := capture(t, "run", "-seeds", "1", "-n", "3",
		"-timeline", path, "-hist", "baseline-synchronous")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "timeline: 4 run(s) written to "+path) {
		t.Errorf("missing timeline confirmation line:\n%s", out)
	}
	// -hist printed merged summaries alongside the report.
	if !strings.Contains(out, "histograms (merged over 4 runs):") ||
		!strings.Contains(out, "decide-latency") {
		t.Errorf("-hist output missing merged summaries:\n%s", out)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline is not valid Chrome-trace JSON: %v", err)
	}
	// Locate the round-based run via its process_name metadata.
	rbPID := -1
	pids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		if ev.Ph == "M" && ev.Name == "process_name" {
			if n, _ := ev.Args["name"].(string); strings.Contains(n, "/roundbased/") {
				rbPID = ev.PID
			}
		}
	}
	if len(pids) != 4 {
		t.Errorf("timeline has %d pids, want 4 (one per protocol run)", len(pids))
	}
	if rbPID < 0 {
		t.Fatal("no process_name metadata names the roundbased run")
	}
	// Every node lane (tid = proc+1; tid 0 is the run-level lane) of the
	// round-based run carries at least one round span.
	rounds := make(map[int]int)
	for _, ev := range doc.TraceEvents {
		if ev.PID == rbPID && ev.Ph == "X" && ev.Cat == "round" {
			rounds[ev.TID]++
		}
	}
	for tid := 1; tid <= 3; tid++ {
		if rounds[tid] == 0 {
			t.Errorf("node lane tid=%d of the roundbased run has no round span (got %v)", tid, rounds)
		}
	}
}

// TestProfileFlagsWriteFiles smokes the -cpuprofile/-memprofile hooks on
// both subcommands: the files must exist and be non-empty pprof output
// after the command returns.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if out, err := capture(t, "run", "-seeds", "1",
		"-cpuprofile", cpu, "-memprofile", mem, "baseline-synchronous"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}

	cpu2 := filepath.Join(dir, "sweep-cpu.prof")
	mem2 := filepath.Join(dir, "sweep-mem.prof")
	if out, err := capture(t, "sweep", "-seeds", "1", "-ns", "3",
		"-cpuprofile", cpu2, "-memprofile", mem2, "baseline-synchronous"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, p := range []string{cpu2, mem2} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("sweep profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("sweep profile %s is empty", p)
		}
	}
}

// TestRSMBenchMatrix crosses -batch and -pipeline into one run per cell and
// checks the CSV carries the knobs and a positive throughput for each.
func TestRSMBenchMatrix(t *testing.T) {
	out, err := capture(t, "rsm-bench", "-clients", "3", "-ops", "4",
		"-batch", "1,8", "-pipeline", "1,4", "-format", "csv")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("got %d CSV rows, want 4 (2 batches × 2 pipelines):\n%s", len(lines)-1, out)
	}
	if !strings.HasPrefix(lines[0], "backend,clients,ops,batch,pipeline,") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	cells := make(map[string]bool)
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if f[0] != "sim" || f[13] != "0" {
			t.Fatalf("unexpected row %q", line)
		}
		cells[f[3]+"/"+f[4]] = true
	}
	for _, want := range []string{"1/1", "1/4", "8/1", "8/4"} {
		if !cells[want] {
			t.Errorf("missing batch/pipeline cell %s:\n%s", want, out)
		}
	}
}

// TestRSMBenchJSON pins the report schema the CI artifact is built from.
func TestRSMBenchJSON(t *testing.T) {
	out, err := capture(t, "rsm-bench", "-clients", "2", "-ops", "3", "-format", "json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var results []struct {
		Backend   string  `json:"backend"`
		TotalOps  int64   `json:"total_ops"`
		OpsPerSec float64 `json:"ops_per_sec"`
		Completed bool    `json:"completed"`
		Commit    *struct {
			P99 float64 `json:"p99"`
		} `json:"commit_latency"`
		Violations []string `json:"violations"`
	}
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 result, got %d", len(results))
	}
	r := results[0]
	if r.Backend != "sim" || !r.Completed || r.TotalOps != 6 ||
		r.OpsPerSec <= 0 || r.Commit == nil || r.Commit.P99 <= 0 || len(r.Violations) != 0 {
		t.Fatalf("unexpected result: %+v\n%s", r, out)
	}
}

// TestRSMBenchLiveBackend smokes the wall-clock path the CI job gates on.
func TestRSMBenchLiveBackend(t *testing.T) {
	out, err := capture(t, "rsm-bench", "-backend", "live",
		"-clients", "2", "-ops", "3", "-delta", "1ms")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "live") {
		t.Errorf("unexpected live bench output:\n%s", out)
	}
}

// TestRSMBenchTimeline smokes the Chrome-trace export of a bench run.
func TestRSMBenchTimeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out, err := capture(t, "rsm-bench", "-clients", "2", "-ops", "3", "-timeline", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "timeline: 1 run(s) written to "+path) {
		t.Errorf("missing timeline confirmation:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline is not valid Chrome-trace JSON: %v", err)
	}
	ops := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "rsm-op" {
			ops++
		}
	}
	if ops != 6 {
		t.Errorf("timeline has %d rsm-op spans, want 6", ops)
	}
}

func TestRSMBenchRejectsBadFlags(t *testing.T) {
	if _, err := capture(t, "rsm-bench", "-batch", "0"); err == nil {
		t.Fatal("non-positive batch should fail")
	}
	if _, err := capture(t, "rsm-bench", "-pipeline", "two"); err == nil {
		t.Fatal("non-numeric pipeline should fail")
	}
	if _, err := capture(t, "rsm-bench", "-backend", "warp"); err == nil {
		t.Fatal("unknown backend should fail")
	}
	if _, err := capture(t, "rsm-bench", "stray"); err == nil {
		t.Fatal("positional argument should fail")
	}
	if _, err := capture(t, "rsm-bench", "-format", "xml"); err == nil {
		t.Fatal("unknown format should fail")
	}
}
