// Command scenario lists, runs, and sweeps the canned adversarial scenarios
// of the scenario engine (internal/scenario).
//
// Usage:
//
//	scenario list
//	scenario run [-backend sim|live|live-tcp] [-seeds N] [-n N] [-delta D]
//	             [-ts D] [-short] [-format text|json]
//	             [-cpuprofile F] [-memprofile F] <name>|all
//	scenario sweep [-axis name=v1,v2,...]... [-zip] [-ns 5,9,17] [-seeds N]
//	               [-delta D] [-workers W] [-backend B] [-failfast]
//	               [-format text|csv|json]
//	               [-cpuprofile F] [-memprofile F] <name>|all
//
// `list` enumerates the canned scenarios and the registered protocols.
// `run` executes a scenario across its protocol set and seed matrix and
// prints the report; it exits non-zero if any invariant was violated, so a
// scenario run doubles as a CI gate. -backend selects the execution
// substrate: the deterministic simulator (default), or the live runtime —
// real goroutines and wall-clock time over in-memory channels (live) or
// loopback TCP (live-tcp), with the scenario's pre-TS policy injected as
// wall-clock faults. -short caps the matrix at one seed per protocol for
// wall-clock smoke runs. `sweep` re-runs a scenario across a multi-axis
// parameter grid (internal/scenario.Grid) and prints the median latency
// after TS per protocol and cell — the O(δ) vs O(Nδ) shape at a glance;
// -failfast stops scheduling cells at the first violated cell. Axes (any
// subset, crossed by default or paired with -zip):
//
//	-axis n=5,9,17 -axis delta=1ms,5ms,25ms -axis rho=0,0.01,0.1
//	-axis ts=0,100ms,400ms -axis sigma=50ms,80ms -axis eps=1ms,5ms -axis k=0,2,8
//
// With no -axis the sweep defaults to n=5,9,17 (-ns is shorthand for the n
// axis). -format csv|json emits one row per (cell, protocol) carrying the
// cell's parameters, for plotting. Runs are deterministic in the flags,
// whatever -workers is.
//
// Both run and sweep take -cpuprofile and -memprofile, writing pprof
// profiles that cover exactly the executed workload — perf work profiles
// the real scenario engine under the real regime mix instead of a
// synthetic benchmark (`go tool pprof cpu.prof` to inspect).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/protocol"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scenario <list|run|sweep> [flags] [name]")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "run":
		return cmdRun(args[1:], out)
	case "sweep":
		return cmdSweep(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, run, or sweep)", args[0])
	}
}

func cmdList(out io.Writer) error {
	fmt.Fprintln(out, "protocols (from the registry; hidden variants run only when named):")
	for _, d := range protocol.All() {
		name := d.Name
		if d.Hidden {
			name += " (hidden)"
		}
		fmt.Fprintf(out, "  %-26s %s\n", name, d.Doc)
	}
	fmt.Fprintln(out, "\nscenarios:")
	for _, s := range scenario.Library() {
		fmt.Fprintf(out, "  %-26s %s\n", s.Name, s.Description)
	}
	return nil
}

// parseWithName parses a subcommand's flags around its single positional
// name argument. Go's flag package stops at the first positional, so
// `scenario run all -seeds 3` would otherwise silently ignore the flags;
// a second Parse over the remainder accepts them on either side.
func parseWithName(fs *flag.FlagSet, args []string, usage string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() == 0 {
		return "", fmt.Errorf("usage: %s", usage)
	}
	name := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return "", err
	}
	if fs.NArg() != 0 {
		return "", fmt.Errorf("unexpected arguments %v; usage: %s", fs.Args(), usage)
	}
	return name, nil
}

// withProfiles runs f under the optional CPU and heap profiles — the hooks
// perf work uses to profile the real scenario workload instead of a
// synthetic benchmark. The CPU profile covers exactly f; the heap profile
// is written after f returns (post-GC, so it shows live memory, not churn).
// Profiles are written even when f fails: a pathological run is exactly the
// one worth profiling.
func withProfiles(cpuPath, memPath string, f func() error) error {
	if cpuPath != "" {
		fh, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer fh.Close()
		if err := pprof.StartCPUProfile(fh); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		// Stopped explicitly below, before the heap write, so the forced
		// GC never shows up as CPU samples; the defer only covers panics.
		defer pprof.StopCPUProfile()
	}
	err := f()
	if cpuPath != "" {
		pprof.StopCPUProfile()
	}
	if memPath != "" {
		fh, merr := os.Create(memPath)
		if merr != nil {
			if err == nil {
				err = fmt.Errorf("create mem profile: %w", merr)
			}
			return err
		}
		defer fh.Close()
		runtime.GC()
		if merr := pprof.WriteHeapProfile(fh); merr != nil && err == nil {
			err = fmt.Errorf("write mem profile: %w", merr)
		}
	}
	return err
}

// resolve expands a name argument to specs: a canned name, or "all".
func resolve(name string) ([]scenario.Spec, error) {
	if name == "all" {
		return scenario.Library(), nil
	}
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (scenario list shows the library)", name)
	}
	return []scenario.Spec{s}, nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	var (
		backend = fs.String("backend", "", "execution substrate: "+strings.Join(scenario.BackendNames(), ", ")+" (default: scenario's own, usually sim)")
		seeds   = fs.Int("seeds", 0, "seeds per protocol (0 = scenario default)")
		n       = fs.Int("n", 0, "cluster size (0 = scenario default)")
		delta   = fs.Duration("delta", 0, "δ override (0 = scenario default)")
		ts      = fs.Duration("ts", 0, "TS override (0 = scenario default)")
		short   = fs.Bool("short", false, "smoke mode: one seed per protocol (for wall-clock live runs)")
		format  = fs.String("format", "text", "output format: text or json")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the runs to this file")
		memProf = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	name, err := parseWithName(fs, args, "scenario run [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	return withProfiles(*cpuProf, *memProf, func() error {
		return runSpecs(specs, out, *backend, *seeds, *short, *n, *delta, *ts, *format)
	})
}

// runSpecs executes the resolved specs with the run subcommand's overrides.
func runSpecs(specs []scenario.Spec, out io.Writer, backend string, seeds int, short bool, n int, delta, ts time.Duration, format string) error {
	violated := 0
	for _, spec := range specs {
		if backend != "" {
			spec.Backend = backend
		}
		if seeds > 0 {
			spec.Seeds = seeds
		}
		if short {
			spec.Seeds = 1
		}
		if n > 0 {
			spec.N = n
		}
		if delta > 0 {
			spec.Delta = delta
		}
		if ts > 0 {
			spec.TS = ts
			// An explicit TS overrides a scenario's stable-from-start
			// default, which would otherwise force TS back to zero.
			spec.StableFromStart = false
		}
		rep, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		violated += len(rep.Violations)
		if format == "json" {
			s, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
		} else {
			fmt.Fprintln(out, rep.Text())
		}
	}
	if violated > 0 {
		return fmt.Errorf("%d invariant violation(s)", violated)
	}
	return nil
}

// axisFlags accumulates repeated -axis flags into parsed grid axes.
type axisFlags struct {
	axes []scenario.Axis
}

// String implements flag.Value.
func (a *axisFlags) String() string {
	names := make([]string, len(a.axes))
	for i, ax := range a.axes {
		names[i] = ax.Name
	}
	return strings.Join(names, ",")
}

// Set implements flag.Value.
func (a *axisFlags) Set(s string) error {
	ax, err := scenario.ParseAxis(s)
	if err != nil {
		return err
	}
	a.axes = append(a.axes, ax)
	return nil
}

func cmdSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario sweep", flag.ContinueOnError)
	var axes axisFlags
	fs.Var(&axes, "axis", "swept axis \"name=v1,v2,...\" (repeatable; names: "+strings.Join(scenario.AxisNames(), ", ")+")")
	var (
		ns       = fs.String("ns", "", "shorthand for -axis n=... (default n=5,9,17 when no axis is given)")
		zip      = fs.Bool("zip", false, "pair the axes element-wise instead of crossing them")
		seeds    = fs.Int("seeds", 3, "seeds per protocol per cell")
		delta    = fs.Duration("delta", 0, "base δ override (0 = scenario default; use -axis delta=... to sweep it)")
		workers  = fs.Int("workers", 0, "worker pool size shared across all cells (0 = GOMAXPROCS)")
		backend  = fs.String("backend", "", "execution substrate: "+strings.Join(scenario.BackendNames(), ", ")+" (default: scenario's own, usually sim)")
		failfast = fs.Bool("failfast", false, "stop scheduling cells after the first violated cell")
		format   = fs.String("format", "text", "output format: text, csv, or json")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = fs.String("memprofile", "", "write a post-sweep heap profile to this file")
	)
	name, err := parseWithName(fs, args, "scenario sweep [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, csv, or json)", *format)
	}
	gridAxes := axes.axes
	if *ns != "" {
		ax, err := scenario.ParseAxis("n=" + *ns)
		if err != nil {
			return err
		}
		gridAxes = append([]scenario.Axis{ax}, gridAxes...)
	}
	if len(gridAxes) == 0 {
		ax, _ := scenario.ParseAxis("n=5,9,17")
		gridAxes = []scenario.Axis{ax}
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	return withProfiles(*cpuProf, *memProf, func() error {
		violated := 0
		var reports []*scenario.GridReport
		for _, spec := range specs {
			spec.Seeds = *seeds
			if *delta > 0 {
				spec.Delta = *delta
			}
			if *backend != "" {
				spec.Backend = *backend
			}
			rep, err := scenario.Grid{Base: spec, Axes: gridAxes, Zip: *zip, Workers: *workers, FailFast: *failfast}.Run()
			if err != nil {
				return err
			}
			violated += rep.TotalViolations()
			reports = append(reports, rep)
			if *format == "text" {
				fmt.Fprintln(out, rep.Text())
			}
		}
		switch *format {
		case "csv":
			fmt.Fprintln(out, scenario.GridCSVHeader)
			for _, rep := range reports {
				for _, row := range rep.CSVRows() {
					fmt.Fprintln(out, row)
				}
			}
		case "json":
			enc, err := json.MarshalIndent(reports, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(enc))
		}
		if violated > 0 {
			return fmt.Errorf("%d invariant violation(s) during sweep", violated)
		}
		return nil
	})
}
