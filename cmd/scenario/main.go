// Command scenario lists, runs, and sweeps the canned adversarial scenarios
// of the scenario engine (internal/scenario).
//
// Usage:
//
//	scenario list
//	scenario run [-seeds N] [-n N] [-delta D] [-ts D] [-format text|json] <name>|all
//	scenario sweep [-ns 5,9,17] [-seeds N] [-delta D] <name>|all
//
// `run` executes a scenario across its protocol set and seed matrix and
// prints the report; it exits non-zero if any invariant was violated, so a
// scenario run doubles as a CI gate. `sweep` re-runs a scenario across
// cluster sizes and prints the median latency after TS per protocol — the
// O(δ) vs O(Nδ) shape at a glance. Runs are deterministic in the flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scenario <list|run|sweep> [flags] [name]")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "run":
		return cmdRun(args[1:], out)
	case "sweep":
		return cmdSweep(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, run, or sweep)", args[0])
	}
}

func cmdList(out io.Writer) error {
	for _, s := range scenario.Library() {
		fmt.Fprintf(out, "%-26s %s\n", s.Name, s.Description)
	}
	return nil
}

// parseWithName parses a subcommand's flags around its single positional
// name argument. Go's flag package stops at the first positional, so
// `scenario run all -seeds 3` would otherwise silently ignore the flags;
// a second Parse over the remainder accepts them on either side.
func parseWithName(fs *flag.FlagSet, args []string, usage string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() == 0 {
		return "", fmt.Errorf("usage: %s", usage)
	}
	name := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return "", err
	}
	if fs.NArg() != 0 {
		return "", fmt.Errorf("unexpected arguments %v; usage: %s", fs.Args(), usage)
	}
	return name, nil
}

// resolve expands a name argument to specs: a canned name, or "all".
func resolve(name string) ([]scenario.Spec, error) {
	if name == "all" {
		return scenario.Library(), nil
	}
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (scenario list shows the library)", name)
	}
	return []scenario.Spec{s}, nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	var (
		seeds  = fs.Int("seeds", 0, "seeds per protocol (0 = scenario default)")
		n      = fs.Int("n", 0, "cluster size (0 = scenario default)")
		delta  = fs.Duration("delta", 0, "δ override (0 = scenario default)")
		ts     = fs.Duration("ts", 0, "TS override (0 = scenario default)")
		format = fs.String("format", "text", "output format: text or json")
	)
	name, err := parseWithName(fs, args, "scenario run [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	violated := 0
	for _, spec := range specs {
		if *seeds > 0 {
			spec.Seeds = *seeds
		}
		if *n > 0 {
			spec.N = *n
		}
		if *delta > 0 {
			spec.Delta = *delta
		}
		if *ts > 0 {
			spec.TS = *ts
			// An explicit TS overrides a scenario's stable-from-start
			// default, which would otherwise force TS back to zero.
			spec.StableFromStart = false
		}
		rep, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		violated += len(rep.Violations)
		if *format == "json" {
			s, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
		} else {
			fmt.Fprintln(out, rep.Text())
		}
	}
	if violated > 0 {
		return fmt.Errorf("%d invariant violation(s)", violated)
	}
	return nil
}

func cmdSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario sweep", flag.ContinueOnError)
	var (
		ns    = fs.String("ns", "5,9,17", "comma-separated cluster sizes")
		seeds = fs.Int("seeds", 3, "seeds per protocol per size")
		delta = fs.Duration("delta", 0, "δ override (0 = scenario default)")
	)
	name, err := parseWithName(fs, args, "scenario sweep [flags] <name>|all")
	if err != nil {
		return err
	}
	sizes, err := parseInts(*ns)
	if err != nil {
		return err
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	violated := 0
	for _, spec := range specs {
		spec.Seeds = *seeds
		if *delta > 0 {
			spec.Delta = *delta
		}
		fmt.Fprintf(out, "sweep %s — median latency after TS (in δ) vs N\n", spec.Name)
		var header bool
		for _, size := range sizes {
			s := spec
			s.N = size
			rep, err := scenario.Run(s)
			if err != nil {
				return err
			}
			if !header {
				fmt.Fprintf(out, "%-6s", "N")
				for _, pr := range rep.Protocols {
					fmt.Fprintf(out, "%-14s", pr.Protocol)
				}
				fmt.Fprintln(out)
				header = true
			}
			fmt.Fprintf(out, "%-6d", size)
			for _, pr := range rep.Protocols {
				cell := trace.InDelta(pr.Latency.Median, rep.Delta)
				if len(rep.Violations) > 0 {
					cell += "!"
				}
				fmt.Fprintf(out, "%-14s", cell)
			}
			fmt.Fprintln(out)
			violated += len(rep.Violations)
		}
		fmt.Fprintln(out)
	}
	if violated > 0 {
		return fmt.Errorf("%d invariant violation(s) during sweep ('!' rows)", violated)
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad cluster size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cluster sizes given")
	}
	return out, nil
}
