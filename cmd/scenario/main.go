// Command scenario lists, runs, and sweeps the canned adversarial scenarios
// of the scenario engine (internal/scenario).
//
// Usage:
//
//	scenario list
//	scenario run [-backend sim|live|live-tcp] [-seeds N] [-n N] [-delta D]
//	             [-ts D] [-short] [-format text|json]
//	             [-observe] [-timeline out.json] [-hist]
//	             [-cpuprofile F] [-memprofile F] <name>|all
//	scenario sweep [-axis name=v1,v2,...]... [-zip] [-ns 5,9,17] [-seeds N]
//	               [-delta D] [-workers W] [-backend B] [-failfast]
//	               [-observe] [-format text|csv|json]
//	               [-cpuprofile F] [-memprofile F] <name>|all
//	scenario rsm-bench [-backend sim|live|live-tcp] [-clients N] [-ops N]
//	                   [-n N] [-keys N] [-batch 1,8] [-pipeline 1,4]
//	                   [-queue N] [-linger D] [-open D] [-delta D] [-seed S]
//	                   [-crash-leader D] [-restart-leader D]
//	                   [-compact-every N] [-failover-timeout D]
//	                   [-format text|csv|json] [-timeline out.json]
//
// `list` enumerates the canned scenarios and the registered protocols.
// `run` executes a scenario across its protocol set and seed matrix and
// prints the report; it exits non-zero if any invariant was violated, so a
// scenario run doubles as a CI gate. -backend selects the execution
// substrate: the deterministic simulator (default), or the live runtime —
// real goroutines and wall-clock time over in-memory channels (live) or
// loopback TCP (live-tcp), with the scenario's pre-TS policy injected as
// wall-clock faults. -short caps the matrix at one seed per protocol for
// wall-clock smoke runs. `sweep` re-runs a scenario across a multi-axis
// parameter grid (internal/scenario.Grid) and prints the median latency
// after TS per protocol and cell — the O(δ) vs O(Nδ) shape at a glance;
// -failfast stops scheduling cells at the first violated cell. Axes (any
// subset, crossed by default or paired with -zip):
//
//	-axis n=5,9,17 -axis delta=1ms,5ms,25ms -axis rho=0,0.01,0.1
//	-axis ts=0,100ms,400ms -axis sigma=50ms,80ms -axis eps=1ms,5ms -axis k=0,2,8
//
// With no -axis the sweep defaults to n=5,9,17 (-ns is shorthand for the n
// axis). -format csv|json emits one row per (cell, protocol) carrying the
// cell's parameters, for plotting. Runs are deterministic in the flags,
// whatever -workers is.
//
// Observability: -observe records phase spans and latency histograms on
// every run (identical schedules — observation consumes no randomness);
// reports then carry per-protocol decision-latency quantiles, and sweep CSVs
// populate the decision_p50/p95/p99 columns. `run -timeline out.json` writes
// all runs as one Chrome-trace timeline (open in chrome://tracing or
// ui.perfetto.dev); `run -hist` prints every histogram merged across runs.
// Both imply -observe.
//
// `rsm-bench` drives the replicated-log serving path (internal/rsm) with the
// multi-client workload generator (internal/rsmbench): closed-loop by
// default, open-loop with -open. -batch and -pipeline take comma lists that
// are crossed into one run per (batch, pipeline) cell, so
// `rsm-bench -batch 1,8 -pipeline 1,4` prints the batching/pipelining
// speedup matrix directly. Every run reports ops/sec and commit-latency
// quantiles and always checks the exactly-once, apply-order, and
// cross-replica agreement invariants; any violation (or timeout) makes the
// command exit non-zero, so a bench run doubles as a CI gate.
//
// Chaos flags: -crash-leader kills the initial leader mid-run (the group
// fails over by epoch and the clients resume on the new leader) and
// -restart-leader brings it back, where it catches up — via snapshot when
// -compact-every has truncated the log past its crash point. Chaos runs
// report failover/catch-up latency histograms and a per-replica rsmlog/
// key census in the JSON output, and judge agreement slot-aligned (a
// restarted replica's recorder restarts at its replay point).
//
// Both run and sweep take -cpuprofile and -memprofile, writing pprof
// profiles that cover exactly the executed workload — perf work profiles
// the real scenario engine under the real regime mix instead of a
// synthetic benchmark (`go tool pprof cpu.prof` to inspect).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/protocol"
	"repro/internal/rsmbench"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scenario <list|run|sweep|rsm-bench> [flags] [name]")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "run":
		return cmdRun(args[1:], out)
	case "sweep":
		return cmdSweep(args[1:], out)
	case "rsm-bench":
		return cmdRSMBench(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, run, sweep, or rsm-bench)", args[0])
	}
}

func cmdList(out io.Writer) error {
	fmt.Fprintln(out, "protocols (from the registry; hidden variants run only when named):")
	for _, d := range protocol.All() {
		name := d.Name
		if d.Hidden {
			name += " (hidden)"
		}
		fmt.Fprintf(out, "  %-26s %s\n", name, d.Doc)
	}
	fmt.Fprintln(out, "\nscenarios:")
	for _, s := range scenario.Library() {
		fmt.Fprintf(out, "  %-26s %s\n", s.Name, s.Description)
	}
	return nil
}

// parseWithName parses a subcommand's flags around its single positional
// name argument. Go's flag package stops at the first positional, so
// `scenario run all -seeds 3` would otherwise silently ignore the flags;
// a second Parse over the remainder accepts them on either side.
func parseWithName(fs *flag.FlagSet, args []string, usage string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() == 0 {
		return "", fmt.Errorf("usage: %s", usage)
	}
	name := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return "", err
	}
	if fs.NArg() != 0 {
		return "", fmt.Errorf("unexpected arguments %v; usage: %s", fs.Args(), usage)
	}
	return name, nil
}

// withProfiles runs f under the optional CPU and heap profiles — the hooks
// perf work uses to profile the real scenario workload instead of a
// synthetic benchmark. The CPU profile covers exactly f; the heap profile
// is written after f returns (post-GC, so it shows live memory, not churn).
// Profiles are written even when f fails: a pathological run is exactly the
// one worth profiling.
func withProfiles(cpuPath, memPath string, f func() error) error {
	if cpuPath != "" {
		fh, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer fh.Close()
		if err := pprof.StartCPUProfile(fh); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		// Stopped explicitly below, before the heap write, so the forced
		// GC never shows up as CPU samples; the defer only covers panics.
		defer pprof.StopCPUProfile()
	}
	err := f()
	if cpuPath != "" {
		pprof.StopCPUProfile()
	}
	if memPath != "" {
		fh, merr := os.Create(memPath)
		if merr != nil {
			if err == nil {
				err = fmt.Errorf("create mem profile: %w", merr)
			}
			return err
		}
		defer fh.Close()
		runtime.GC()
		if merr := pprof.WriteHeapProfile(fh); merr != nil && err == nil {
			err = fmt.Errorf("write mem profile: %w", merr)
		}
	}
	return err
}

// resolve expands a name argument to specs: a canned name, or "all".
func resolve(name string) ([]scenario.Spec, error) {
	if name == "all" {
		return scenario.Library(), nil
	}
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (scenario list shows the library)", name)
	}
	return []scenario.Spec{s}, nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	var (
		backend  = fs.String("backend", "", "execution substrate: "+strings.Join(scenario.BackendNames(), ", ")+" (default: scenario's own, usually sim)")
		seeds    = fs.Int("seeds", 0, "seeds per protocol (0 = scenario default)")
		n        = fs.Int("n", 0, "cluster size (0 = scenario default)")
		delta    = fs.Duration("delta", 0, "δ override (0 = scenario default)")
		ts       = fs.Duration("ts", 0, "TS override (0 = scenario default)")
		short    = fs.Bool("short", false, "smoke mode: one seed per protocol (for wall-clock live runs)")
		format   = fs.String("format", "text", "output format: text or json")
		observe  = fs.Bool("observe", false, "enable phase spans and latency histograms (reports gain decision-latency quantiles)")
		timeline = fs.String("timeline", "", "write a Chrome-trace timeline of every run to this file (implies -observe)")
		hist     = fs.Bool("hist", false, "print merged histogram summaries after each report (implies -observe)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the runs to this file")
		memProf  = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	name, err := parseWithName(fs, args, "scenario run [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	return withProfiles(*cpuProf, *memProf, func() error {
		return runSpecs(specs, out, runOpts{
			backend: *backend, seeds: *seeds, short: *short, n: *n,
			delta: *delta, ts: *ts, format: *format,
			observe: *observe, timeline: *timeline, hist: *hist,
		})
	})
}

// runOpts carries the run subcommand's overrides.
type runOpts struct {
	backend  string
	seeds    int
	short    bool
	n        int
	delta    time.Duration
	ts       time.Duration
	format   string
	observe  bool
	timeline string
	hist     bool
}

// runSpecs executes the resolved specs with the run subcommand's overrides.
func runSpecs(specs []scenario.Spec, out io.Writer, opts runOpts) error {
	observe := opts.observe || opts.timeline != "" || opts.hist
	violated := 0
	// One timeline file spans every run of every spec: one Chrome-trace
	// "process" per run, lanes (threads) per consensus process within it.
	var procs []trace.TimelineProcess
	for _, spec := range specs {
		if opts.backend != "" {
			spec.Backend = opts.backend
		}
		if opts.seeds > 0 {
			spec.Seeds = opts.seeds
		}
		if opts.short {
			spec.Seeds = 1
		}
		if opts.n > 0 {
			spec.N = opts.n
		}
		if opts.delta > 0 {
			spec.Delta = opts.delta
		}
		if opts.ts > 0 {
			spec.TS = opts.ts
			// An explicit TS overrides a scenario's stable-from-start
			// default, which would otherwise force TS back to zero.
			spec.StableFromStart = false
		}
		if observe {
			spec.Observe = true
			// Snapshots and merged histograms read the raw runs.
			spec.KeepRuns = true
		}
		rep, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		violated += len(rep.Violations)
		if opts.format == "json" {
			s, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
		} else {
			fmt.Fprintln(out, rep.Text())
		}
		if opts.hist {
			fmt.Fprintf(out, "histograms (merged over %d runs):\n", len(rep.Runs()))
			for _, s := range rep.HistogramSummaries() {
				fmt.Fprintln(out, "  "+s.String())
			}
			fmt.Fprintln(out)
		}
		if opts.timeline != "" {
			for _, run := range rep.Runs() {
				name := fmt.Sprintf("%s/%s/seed=%d", rep.Scenario, run.Protocol, run.Seed)
				if rep.Backend != scenario.BackendSim {
					name += "/" + rep.Backend
				}
				procs = append(procs, trace.TimelineProcess{
					PID:  len(procs),
					Name: name,
					Snap: run.Res.Collector.Snapshot(),
				})
			}
		}
	}
	if opts.timeline != "" {
		fh, err := os.Create(opts.timeline)
		if err != nil {
			return fmt.Errorf("create timeline: %w", err)
		}
		werr := trace.WriteChromeTrace(fh, procs)
		if cerr := fh.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write timeline: %w", werr)
		}
		fmt.Fprintf(out, "timeline: %d run(s) written to %s (open in chrome://tracing or ui.perfetto.dev)\n", len(procs), opts.timeline)
	}
	if violated > 0 {
		return fmt.Errorf("%d invariant violation(s)", violated)
	}
	return nil
}

// parseIntList parses a comma-separated list of positive ints ("1,8").
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-%s: bad value %q (want positive ints, e.g. \"1,8\")", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdRSMBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario rsm-bench", flag.ContinueOnError)
	var (
		backend  = fs.String("backend", rsmbench.BackendSim, "substrate: sim, live, or live-tcp")
		n        = fs.Int("n", 0, "replica count (default 3)")
		clients  = fs.Int("clients", 0, "workload clients (default 8)")
		ops      = fs.Int("ops", 0, "operations per client (default 20)")
		keys     = fs.Int("keys", 0, "key-space size (default 16)")
		batch    = fs.String("batch", "", "max batch sizes, comma list crossed with -pipeline (default rsm default: 8)")
		pipeline = fs.String("pipeline", "", "max in-flight slots, comma list crossed with -batch (default rsm default: 4)")
		queue    = fs.Int("queue", 0, "proposal queue bound before Busy shedding (default 1024)")
		linger   = fs.Duration("linger", 0, "batch linger window (default 0: flush on idle pipeline)")
		open     = fs.Duration("open", 0, "open-loop issue interval (default 0: closed loop)")
		delta    = fs.Duration("delta", 0, "network delay bound δ (default 2ms)")
		seed     = fs.Int64("seed", 0, "substrate seed (default 1)")
		format   = fs.String("format", "text", "output format: text, csv, or json")
		timeline = fs.String("timeline", "", "write a Chrome-trace timeline of every run to this file")
		crash    = fs.Duration("crash-leader", 0, "kill the initial leader this long into the run (default 0: no crash)")
		restart  = fs.Duration("restart-leader", 0, "restart the crashed leader this long into the run (needs -crash-leader)")
		compact  = fs.Int64("compact-every", 0, "snapshot and truncate the log every N applied slots (default 0: off)")
		fotmo    = fs.Duration("failover-timeout", 0, "leader-silence window before takeover (default 10×δ when -crash-leader is set)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v; rsm-bench takes only flags", fs.Args())
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, csv, or json)", *format)
	}
	if *restart > 0 && *crash <= 0 {
		return fmt.Errorf("-restart-leader needs -crash-leader")
	}
	if *restart > 0 && *restart <= *crash {
		return fmt.Errorf("-restart-leader (%v) must be after -crash-leader (%v)", *restart, *crash)
	}
	batches, pipelines := []int{0}, []int{0}
	var err error
	if *batch != "" {
		if batches, err = parseIntList("batch", *batch); err != nil {
			return err
		}
	}
	if *pipeline != "" {
		if pipelines, err = parseIntList("pipeline", *pipeline); err != nil {
			return err
		}
	}

	var results []*rsmbench.Result
	var procs []trace.TimelineProcess
	for _, b := range batches {
		for _, k := range pipelines {
			res, err := rsmbench.Run(rsmbench.Config{
				Backend: *backend, N: *n, Clients: *clients, Ops: *ops,
				Keys: *keys, MaxBatch: b, MaxInFlight: k, MaxQueue: *queue,
				Linger: *linger, OpenInterval: *open, Delta: *delta,
				Seed: *seed, Observe: *timeline != "",
				CrashLeaderAt: *crash, RestartLeaderAt: *restart,
				CompactEvery: *compact, FailoverTimeout: *fotmo,
			})
			if err != nil {
				return err
			}
			results = append(results, res)
			if *timeline != "" {
				procs = append(procs, trace.TimelineProcess{
					PID:  len(procs),
					Name: fmt.Sprintf("rsm-bench/%s/batch=%d/k=%d", res.Backend, res.MaxBatch, res.MaxInFlight),
					Snap: res.Collector().Snapshot(),
				})
			}
		}
	}

	switch *format {
	case "csv":
		fmt.Fprint(out, rsmbench.CSV(results))
	case "json":
		s, err := rsmbench.JSON(results)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s)
	default:
		fmt.Fprint(out, rsmbench.Text(results))
	}
	if *timeline != "" {
		fh, err := os.Create(*timeline)
		if err != nil {
			return fmt.Errorf("create timeline: %w", err)
		}
		werr := trace.WriteChromeTrace(fh, procs)
		if cerr := fh.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write timeline: %w", werr)
		}
		fmt.Fprintf(out, "timeline: %d run(s) written to %s (open in chrome://tracing or ui.perfetto.dev)\n", len(procs), *timeline)
	}
	failed := 0
	for _, r := range results {
		if !r.Passed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d run(s) failed (timeout or invariant violations)", failed)
	}
	return nil
}

// axisFlags accumulates repeated -axis flags into parsed grid axes.
type axisFlags struct {
	axes []scenario.Axis
}

// String implements flag.Value.
func (a *axisFlags) String() string {
	names := make([]string, len(a.axes))
	for i, ax := range a.axes {
		names[i] = ax.Name
	}
	return strings.Join(names, ",")
}

// Set implements flag.Value.
func (a *axisFlags) Set(s string) error {
	ax, err := scenario.ParseAxis(s)
	if err != nil {
		return err
	}
	a.axes = append(a.axes, ax)
	return nil
}

func cmdSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario sweep", flag.ContinueOnError)
	var axes axisFlags
	fs.Var(&axes, "axis", "swept axis \"name=v1,v2,...\" (repeatable; names: "+strings.Join(scenario.AxisNames(), ", ")+")")
	var (
		ns       = fs.String("ns", "", "shorthand for -axis n=... (default n=5,9,17 when no axis is given)")
		zip      = fs.Bool("zip", false, "pair the axes element-wise instead of crossing them")
		seeds    = fs.Int("seeds", 3, "seeds per protocol per cell")
		delta    = fs.Duration("delta", 0, "base δ override (0 = scenario default; use -axis delta=... to sweep it)")
		workers  = fs.Int("workers", 0, "worker pool size shared across all cells (0 = GOMAXPROCS)")
		backend  = fs.String("backend", "", "execution substrate: "+strings.Join(scenario.BackendNames(), ", ")+" (default: scenario's own, usually sim)")
		failfast = fs.Bool("failfast", false, "stop scheduling cells after the first violated cell")
		observe  = fs.Bool("observe", false, "enable latency histograms (CSV decision_p50/p95/p99 columns populate)")
		format   = fs.String("format", "text", "output format: text, csv, or json")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = fs.String("memprofile", "", "write a post-sweep heap profile to this file")
	)
	name, err := parseWithName(fs, args, "scenario sweep [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, csv, or json)", *format)
	}
	gridAxes := axes.axes
	if *ns != "" {
		ax, err := scenario.ParseAxis("n=" + *ns)
		if err != nil {
			return err
		}
		gridAxes = append([]scenario.Axis{ax}, gridAxes...)
	}
	if len(gridAxes) == 0 {
		ax, _ := scenario.ParseAxis("n=5,9,17")
		gridAxes = []scenario.Axis{ax}
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	return withProfiles(*cpuProf, *memProf, func() error {
		violated := 0
		var reports []*scenario.GridReport
		for _, spec := range specs {
			spec.Seeds = *seeds
			if *delta > 0 {
				spec.Delta = *delta
			}
			if *backend != "" {
				spec.Backend = *backend
			}
			if *observe {
				spec.Observe = true
			}
			rep, err := scenario.Grid{Base: spec, Axes: gridAxes, Zip: *zip, Workers: *workers, FailFast: *failfast}.Run()
			if err != nil {
				return err
			}
			violated += rep.TotalViolations()
			reports = append(reports, rep)
			if *format == "text" {
				fmt.Fprintln(out, rep.Text())
			}
		}
		switch *format {
		case "csv":
			fmt.Fprintln(out, scenario.GridCSVHeader)
			for _, rep := range reports {
				for _, row := range rep.CSVRows() {
					fmt.Fprintln(out, row)
				}
			}
		case "json":
			enc, err := json.MarshalIndent(reports, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(enc))
		}
		if violated > 0 {
			return fmt.Errorf("%d invariant violation(s) during sweep", violated)
		}
		return nil
	})
}
