// Command scenario lists, runs, and sweeps the canned adversarial scenarios
// of the scenario engine (internal/scenario).
//
// Usage:
//
//	scenario list
//	scenario run [-seeds N] [-n N] [-delta D] [-ts D] [-format text|json] <name>|all
//	scenario sweep [-ns 5,9,17] [-seeds N] [-delta D] [-format text|csv|json] <name>|all
//
// `list` enumerates the canned scenarios and the registered protocols.
// `run` executes a scenario across its protocol set and seed matrix and
// prints the report; it exits non-zero if any invariant was violated, so a
// scenario run doubles as a CI gate. `sweep` re-runs a scenario across
// cluster sizes and prints the median latency after TS per protocol — the
// O(δ) vs O(Nδ) shape at a glance; -format csv|json emits one row per
// (scenario, N, protocol) cell for plotting. Runs are deterministic in the
// flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scenario <list|run|sweep> [flags] [name]")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "run":
		return cmdRun(args[1:], out)
	case "sweep":
		return cmdSweep(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, run, or sweep)", args[0])
	}
}

func cmdList(out io.Writer) error {
	fmt.Fprintln(out, "protocols (from the registry; hidden variants run only when named):")
	for _, d := range protocol.All() {
		name := d.Name
		if d.Hidden {
			name += " (hidden)"
		}
		fmt.Fprintf(out, "  %-26s %s\n", name, d.Doc)
	}
	fmt.Fprintln(out, "\nscenarios:")
	for _, s := range scenario.Library() {
		fmt.Fprintf(out, "  %-26s %s\n", s.Name, s.Description)
	}
	return nil
}

// parseWithName parses a subcommand's flags around its single positional
// name argument. Go's flag package stops at the first positional, so
// `scenario run all -seeds 3` would otherwise silently ignore the flags;
// a second Parse over the remainder accepts them on either side.
func parseWithName(fs *flag.FlagSet, args []string, usage string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() == 0 {
		return "", fmt.Errorf("usage: %s", usage)
	}
	name := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return "", err
	}
	if fs.NArg() != 0 {
		return "", fmt.Errorf("unexpected arguments %v; usage: %s", fs.Args(), usage)
	}
	return name, nil
}

// resolve expands a name argument to specs: a canned name, or "all".
func resolve(name string) ([]scenario.Spec, error) {
	if name == "all" {
		return scenario.Library(), nil
	}
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (scenario list shows the library)", name)
	}
	return []scenario.Spec{s}, nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	var (
		seeds  = fs.Int("seeds", 0, "seeds per protocol (0 = scenario default)")
		n      = fs.Int("n", 0, "cluster size (0 = scenario default)")
		delta  = fs.Duration("delta", 0, "δ override (0 = scenario default)")
		ts     = fs.Duration("ts", 0, "TS override (0 = scenario default)")
		format = fs.String("format", "text", "output format: text or json")
	)
	name, err := parseWithName(fs, args, "scenario run [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	violated := 0
	for _, spec := range specs {
		if *seeds > 0 {
			spec.Seeds = *seeds
		}
		if *n > 0 {
			spec.N = *n
		}
		if *delta > 0 {
			spec.Delta = *delta
		}
		if *ts > 0 {
			spec.TS = *ts
			// An explicit TS overrides a scenario's stable-from-start
			// default, which would otherwise force TS back to zero.
			spec.StableFromStart = false
		}
		rep, err := scenario.Run(spec)
		if err != nil {
			return err
		}
		violated += len(rep.Violations)
		if *format == "json" {
			s, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, s)
		} else {
			fmt.Fprintln(out, rep.Text())
		}
	}
	if violated > 0 {
		return fmt.Errorf("%d invariant violation(s)", violated)
	}
	return nil
}

// sweepRow is one (scenario, N, protocol) cell of a sweep in
// machine-readable form (-format csv|json), ready for plotting.
type sweepRow struct {
	Scenario            string        `json:"scenario"`
	N                   int           `json:"n"`
	Protocol            string        `json:"protocol"`
	Seeds               int           `json:"seeds"`
	Decided             int           `json:"decided"`
	Delta               time.Duration `json:"delta_ns"`
	LatencyMedian       time.Duration `json:"latency_median_ns"`
	LatencyMedianDeltas float64       `json:"latency_median_deltas"`
	LatencyMax          time.Duration `json:"latency_max_ns"`
	MessagesMedian      int64         `json:"messages_median"`
	Violations          int           `json:"violations"`
}

func cmdSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenario sweep", flag.ContinueOnError)
	var (
		ns     = fs.String("ns", "5,9,17", "comma-separated cluster sizes")
		seeds  = fs.Int("seeds", 3, "seeds per protocol per size")
		delta  = fs.Duration("delta", 0, "δ override (0 = scenario default)")
		format = fs.String("format", "text", "output format: text, csv, or json")
	)
	name, err := parseWithName(fs, args, "scenario sweep [flags] <name>|all")
	if err != nil {
		return err
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, csv, or json)", *format)
	}
	sizes, err := parseInts(*ns)
	if err != nil {
		return err
	}
	specs, err := resolve(name)
	if err != nil {
		return err
	}
	violated := 0
	var rows []sweepRow
	for _, spec := range specs {
		spec.Seeds = *seeds
		if *delta > 0 {
			spec.Delta = *delta
		}
		if *format == "text" {
			fmt.Fprintf(out, "sweep %s — median latency after TS (in δ) vs N\n", spec.Name)
		}
		var header bool
		for _, size := range sizes {
			s := spec
			s.N = size
			rep, err := scenario.Run(s)
			if err != nil {
				return err
			}
			violated += len(rep.Violations)
			if *format != "text" {
				for _, pr := range rep.Protocols {
					nViol := 0
					for _, v := range rep.Violations {
						if v.Protocol == pr.Protocol {
							nViol++
						}
					}
					rows = append(rows, sweepRow{
						Scenario: spec.Name, N: size, Protocol: string(pr.Protocol),
						Seeds: pr.Seeds, Decided: pr.Decided, Delta: rep.Delta,
						LatencyMedian:       pr.Latency.Median,
						LatencyMedianDeltas: float64(pr.Latency.Median) / float64(rep.Delta),
						LatencyMax:          pr.Latency.Max,
						MessagesMedian:      int64(pr.Messages.Median),
						Violations:          nViol,
					})
				}
				continue
			}
			if !header {
				fmt.Fprintf(out, "%-6s", "N")
				for _, pr := range rep.Protocols {
					fmt.Fprintf(out, "%-14s", pr.Protocol)
				}
				fmt.Fprintln(out)
				header = true
			}
			fmt.Fprintf(out, "%-6d", size)
			for _, pr := range rep.Protocols {
				cell := trace.InDelta(pr.Latency.Median, rep.Delta)
				if len(rep.Violations) > 0 {
					cell += "!"
				}
				fmt.Fprintf(out, "%-14s", cell)
			}
			fmt.Fprintln(out)
		}
		if *format == "text" {
			fmt.Fprintln(out)
		}
	}
	switch *format {
	case "csv":
		fmt.Fprintln(out, "scenario,n,protocol,seeds,decided,delta_ns,latency_median_ns,latency_median_deltas,latency_max_ns,messages_median,violations")
		for _, r := range rows {
			fmt.Fprintf(out, "%s,%d,%s,%d,%d,%d,%d,%.3f,%d,%d,%d\n",
				r.Scenario, r.N, r.Protocol, r.Seeds, r.Decided, int64(r.Delta),
				int64(r.LatencyMedian), r.LatencyMedianDeltas, int64(r.LatencyMax),
				r.MessagesMedian, r.Violations)
		}
	case "json":
		enc, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(enc))
	}
	if violated > 0 {
		return fmt.Errorf("%d invariant violation(s) during sweep", violated)
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad cluster size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cluster sizes given")
	}
	return out, nil
}
