// Command perfgate is the CI perf ratchet: it compares fresh measurements
// against the committed BENCH_*.json baselines and exits non-zero when a
// metric regresses past its tolerance.
//
// Two modes, matching the two baseline formats in the repo:
//
//	perfgate -mode bench -baseline BENCH_5.json -input bench.txt
//	    parses `go test -bench` text output and gates the headline
//	    BenchmarkSingleRunModifiedPaxos against benchmarks.after in the
//	    baseline. allocs/op and B/op are host-independent, so their
//	    tolerances are tight (2% and 10%); ns/op depends on the runner's
//	    CPU, so its bound is a loose multiplier (4x) that only catches
//	    gross regressions — the committed medians carry the real numbers.
//
//	perfgate -mode rsm -baseline BENCH_7.json -input rsm.json
//	    reads an rsm-bench -format json report and gates each cell's
//	    ops_per_sec against the matching "batch=B,k=K ..." cell in the
//	    baseline. The simulator counts virtual time, so throughput is
//	    exact modulo the seed and a 5% band covers cross-seed schedule
//	    variance with room to spare; a baseline cell with no matching run
//	    in the input is itself a failure (so dropping a cell from the CI
//	    workload cannot silently pass).
//
//	perfgate -mode broadcast -baseline BENCH_9.json -input bench.txt
//	    like bench, but gates EVERY benchmarks.after entry in the
//	    baseline (the batched/unicast broadcast pair and the dynamics
//	    sweep point), with the same per-metric tolerances. A baseline
//	    entry with no matching benchmark line in the input is a failure,
//	    so narrowing the CI bench regex cannot silently drop a gate.
//
// Exit codes: 0 pass, 1 regression, 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		mode      = flag.String("mode", "", "bench | rsm | broadcast")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json baseline")
		input     = flag.String("input", "", "fresh measurement: go test -bench text (bench) or rsm-bench JSON (rsm)")
		benchName = flag.String("bench-name", "SingleRunModifiedPaxos", "benchmark to gate in -mode bench")
		nsTol     = flag.Float64("ns-tol", 4.0, "bench: fail if ns/op exceeds baseline median times this")
		bytesTol  = flag.Float64("bytes-tol", 0.10, "bench: fail if B/op exceeds baseline median by this fraction")
		allocsTol = flag.Float64("allocs-tol", 0.02, "bench: fail if allocs/op exceeds baseline median by this fraction")
		rsmTol    = flag.Float64("tol", 0.05, "rsm: fail if ops_per_sec falls below baseline median by this fraction")
	)
	flag.Parse()
	if *baseline == "" || *input == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -baseline and -input are required")
		os.Exit(2)
	}

	var checks []check
	var err error
	switch *mode {
	case "bench":
		checks, err = gateBench(*baseline, *input, *benchName, *nsTol, *bytesTol, *allocsTol)
	case "rsm":
		checks, err = gateRSM(*baseline, *input, *rsmTol)
	case "broadcast":
		checks, err = gateBroadcast(*baseline, *input, *nsTol, *bytesTol, *allocsTol)
	default:
		fmt.Fprintf(os.Stderr, "perfgate: unknown -mode %q (want bench, rsm, or broadcast)\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	failed := 0
	for _, c := range checks {
		status := "ok"
		if !c.pass() {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-52s current=%-12s baseline=%-12s limit=%-12s %s\n",
			c.name, trimNum(c.current), trimNum(c.base), trimNum(c.limit), status)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "perfgate: %d metric(s) regressed past tolerance\n", failed)
		os.Exit(1)
	}
	fmt.Printf("perfgate: %d metric(s) within tolerance\n", len(checks))
}

// check is one gated metric. For "at most" metrics (bench costs) the limit is
// an upper bound; for "at least" metrics (throughput) it is a lower bound.
type check struct {
	name    string
	current float64
	base    float64
	limit   float64
	lower   bool // limit is a lower bound (throughput), not an upper bound (cost)
}

func (c check) pass() bool {
	if c.lower {
		return c.current >= c.limit
	}
	return c.current <= c.limit
}

func trimNum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// --- bench mode ---

// benchBaseline matches the benchmarks.after block of BENCH_5.json.
type benchBaseline struct {
	Benchmarks struct {
		After map[string]map[string]struct {
			Median float64 `json:"median"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func gateBench(baselinePath, inputPath, name string, nsTol, bytesTol, allocsTol float64) ([]check, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", baselinePath, err)
	}
	metrics, ok := base.Benchmarks.After[name]
	if !ok {
		return nil, fmt.Errorf("%s: no benchmarks.after entry for %q", baselinePath, name)
	}

	text, err := os.ReadFile(inputPath)
	if err != nil {
		return nil, err
	}
	cur, err := parseBenchOutput(string(text), name)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", inputPath, err)
	}

	gate := func(metric, unit string, got float64, limitOf func(median float64) float64) (check, error) {
		m, ok := metrics[metric]
		if !ok {
			return check{}, fmt.Errorf("%s: baseline %q has no %s metric", baselinePath, name, metric)
		}
		return check{
			name:    fmt.Sprintf("bench %s %s", name, unit),
			current: got,
			base:    m.Median,
			limit:   limitOf(m.Median),
		}, nil
	}
	var checks []check
	for _, g := range []struct {
		metric, unit string
		got          float64
		limit        func(float64) float64
	}{
		{"allocs_op", "allocs/op", cur.allocsOp, func(m float64) float64 { return m * (1 + allocsTol) }},
		{"bytes_op", "B/op", cur.bytesOp, func(m float64) float64 { return m * (1 + bytesTol) }},
		{"ns_op", "ns/op", cur.nsOp, func(m float64) float64 { return m * nsTol }},
	} {
		c, err := gate(g.metric, g.unit, g.got, g.limit)
		if err != nil {
			return nil, err
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// gateBroadcast gates every benchmarks.after entry of the baseline against
// the bench text, in sorted-name order. Unlike bench mode there is no
// headline pick: the broadcast baseline's entries (batched and unicast
// rounds, dynamics sweep point) are all load-bearing — the unicast row is
// what the speedup claim is measured against, so it may not silently rot
// either.
func gateBroadcast(baselinePath, inputPath string, nsTol, bytesTol, allocsTol float64) ([]check, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", baselinePath, err)
	}
	if len(base.Benchmarks.After) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks.after entries", baselinePath)
	}
	names := make([]string, 0, len(base.Benchmarks.After))
	for name := range base.Benchmarks.After {
		names = append(names, name)
	}
	sort.Strings(names)
	var checks []check
	for _, name := range names {
		cs, err := gateBench(baselinePath, inputPath, name, nsTol, bytesTol, allocsTol)
		if err != nil {
			return nil, err
		}
		checks = append(checks, cs...)
	}
	return checks, nil
}

type benchResult struct {
	nsOp, bytesOp, allocsOp float64
}

// parseBenchOutput finds the named benchmark's result line in `go test -bench`
// text output. The name may carry a -GOMAXPROCS suffix; the value for each
// metric is the field immediately before its unit token.
func parseBenchOutput(text, name string) (benchResult, error) {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		bench := fields[0]
		if cut := strings.LastIndexByte(bench, '-'); cut > 0 {
			bench = bench[:cut]
		}
		if bench != "Benchmark"+name && fields[0] != "Benchmark"+name {
			continue
		}
		var res benchResult
		seen := 0
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				res.nsOp, seen = v, seen+1
			case "B/op":
				res.bytesOp, seen = v, seen+1
			case "allocs/op":
				res.allocsOp, seen = v, seen+1
			}
		}
		if seen < 3 {
			return res, fmt.Errorf("benchmark %s line lacks ns/op, B/op, or allocs/op (run with -benchmem): %q", name, line)
		}
		return res, nil
	}
	return benchResult{}, fmt.Errorf("no Benchmark%s result line found", name)
}

// --- rsm mode ---

// rsmBaseline matches BENCH_7.json: cells keyed "batch=B,k=K (label)".
type rsmBaseline struct {
	Cells map[string]struct {
		OpsPerSec struct {
			Median float64 `json:"median"`
		} `json:"ops_per_sec"`
	} `json:"cells"`
}

// rsmRun is the slice element of an rsm-bench -format json report.
type rsmRun struct {
	MaxBatch    int     `json:"max_batch"`
	MaxInFlight int     `json:"max_in_flight"`
	Completed   bool    `json:"completed"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

func gateRSM(baselinePath, inputPath string, tol float64) ([]check, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base rsmBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", baselinePath, err)
	}
	if len(base.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells", baselinePath)
	}

	rawIn, err := os.ReadFile(inputPath)
	if err != nil {
		return nil, err
	}
	var runs []rsmRun
	if err := json.Unmarshal(rawIn, &runs); err != nil {
		return nil, fmt.Errorf("%s: %v", inputPath, err)
	}
	byCell := make(map[[2]int]rsmRun, len(runs))
	for _, r := range runs {
		byCell[[2]int{r.MaxBatch, r.MaxInFlight}] = r
	}

	names := make([]string, 0, len(base.Cells))
	for name := range base.Cells {
		names = append(names, name)
	}
	sort.Strings(names)

	var checks []check
	for _, name := range names {
		batch, k, err := parseCellKey(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", baselinePath, err)
		}
		run, ok := byCell[[2]int{batch, k}]
		if !ok {
			return nil, fmt.Errorf("%s has no run for baseline cell %q (batch=%d, k=%d) — was the CI workload narrowed?", inputPath, name, batch, k)
		}
		if !run.Completed {
			return nil, fmt.Errorf("%s: run for cell %q did not complete", inputPath, name)
		}
		median := base.Cells[name].OpsPerSec.Median
		short, _, _ := strings.Cut(name, " ")
		checks = append(checks, check{
			name:    fmt.Sprintf("rsm %s ops/sec", short),
			current: run.OpsPerSec,
			base:    median,
			limit:   median * (1 - tol),
			lower:   true,
		})
	}
	return checks, nil
}

// parseCellKey extracts B and K from a "batch=B,k=K (label)" cell name.
func parseCellKey(name string) (batch, k int, err error) {
	key, _, _ := strings.Cut(name, " ")
	for _, part := range strings.Split(key, ",") {
		field, val, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, fmt.Errorf("cell key %q: bad field %q", name, part)
		}
		n, convErr := strconv.Atoi(val)
		if convErr != nil {
			return 0, 0, fmt.Errorf("cell key %q: bad value in %q", name, part)
		}
		switch field {
		case "batch":
			batch = n
		case "k":
			k = n
		default:
			return 0, 0, fmt.Errorf("cell key %q: unknown field %q", name, field)
		}
	}
	if batch == 0 || k == 0 {
		return 0, 0, fmt.Errorf("cell key %q: missing batch= or k=", name)
	}
	return batch, k, nil
}
