package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchBaselineJSON = `{
  "benchmarks": {
    "after": {
      "SingleRunModifiedPaxos": {
        "ns_op":     {"median": 100000},
        "bytes_op":  {"median": 50000},
        "allocs_op": {"median": 350}
      }
    }
  }
}`

func TestGateBenchPassAndFail(t *testing.T) {
	baseline := writeFile(t, "bench.json", benchBaselineJSON)

	// Within tolerance: slower wall clock (under the 4x band), tight
	// bytes/allocs. The -8 suffix and the custom latency metric column both
	// appear in real output and must not confuse the parser.
	pass := writeFile(t, "pass.txt",
		"BenchmarkSingleRunModifiedPaxos-8 \t 100 \t 250000 ns/op \t 2.6 latency_δ \t 50200 B/op \t 350 allocs/op\nok \trepro\t1.0s\n")
	checks, err := gateBench(baseline, pass, "SingleRunModifiedPaxos", 4.0, 0.10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 3 {
		t.Fatalf("got %d checks, want 3", len(checks))
	}
	for _, c := range checks {
		if !c.pass() {
			t.Errorf("%s: current=%v limit=%v unexpectedly failed", c.name, c.current, c.limit)
		}
	}

	// A new allocation on the hot path must trip the allocs gate even when
	// timing looks fine.
	fail := writeFile(t, "fail.txt",
		"BenchmarkSingleRunModifiedPaxos \t 100 \t 110000 ns/op \t 51000 B/op \t 400 allocs/op\n")
	checks, err = gateBench(baseline, fail, "SingleRunModifiedPaxos", 4.0, 0.10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, c := range checks {
		if !c.pass() {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("got %d failing checks, want exactly the allocs gate", failed)
	}
}

func TestGateBenchMissingBenchmem(t *testing.T) {
	baseline := writeFile(t, "bench.json", benchBaselineJSON)
	input := writeFile(t, "nomem.txt",
		"BenchmarkSingleRunModifiedPaxos \t 100 \t 110000 ns/op\n")
	if _, err := gateBench(baseline, input, "SingleRunModifiedPaxos", 4.0, 0.10, 0.02); err == nil {
		t.Fatal("want error for output without -benchmem columns")
	}
}

const broadcastBaselineJSON = `{
  "benchmarks": {
    "after": {
      "BroadcastN1000/unicast": {
        "ns_op":     {"median": 1200000000},
        "bytes_op":  {"median": 438388496},
        "allocs_op": {"median": 81}
      },
      "BroadcastN1000/batched": {
        "ns_op":     {"median": 270000000},
        "bytes_op":  {"median": 304},
        "allocs_op": {"median": 6}
      }
    }
  }
}`

func TestGateBroadcastGatesEveryEntry(t *testing.T) {
	baseline := writeFile(t, "bench9.json", broadcastBaselineJSON)

	// Sub-benchmark names keep their slash in the output; the -8 suffix is
	// the GOMAXPROCS decoration the parser must strip.
	pass := writeFile(t, "pass.txt",
		"BenchmarkBroadcastN1000/unicast-8 \t 3 \t 1250000000 ns/op \t 438388496 B/op \t 81 allocs/op\n"+
			"BenchmarkBroadcastN1000/batched-8 \t 3 \t 260000000 ns/op \t 304 B/op \t 6 allocs/op\n")
	checks, err := gateBroadcast(baseline, pass, 4.0, 0.10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 6 {
		t.Fatalf("got %d checks, want 3 per baseline entry", len(checks))
	}
	for _, c := range checks {
		if !c.pass() {
			t.Errorf("%s: current=%v limit=%v unexpectedly failed", c.name, c.current, c.limit)
		}
	}

	// One new allocation on the batched fan-out must trip its gate.
	fail := writeFile(t, "fail.txt",
		"BenchmarkBroadcastN1000/unicast-8 \t 3 \t 1250000000 ns/op \t 438388496 B/op \t 81 allocs/op\n"+
			"BenchmarkBroadcastN1000/batched-8 \t 3 \t 260000000 ns/op \t 320 B/op \t 7 allocs/op\n")
	checks, err = gateBroadcast(baseline, fail, 4.0, 0.10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, c := range checks {
		if !c.pass() {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("got %d failing checks, want exactly the batched allocs gate", failed)
	}

	// A baseline entry missing from the input is an error, not a silent
	// pass: narrowing the CI bench regex may not drop a gate.
	missing := writeFile(t, "missing.txt",
		"BenchmarkBroadcastN1000/batched-8 \t 3 \t 260000000 ns/op \t 304 B/op \t 6 allocs/op\n")
	if _, err := gateBroadcast(baseline, missing, 4.0, 0.10, 0.02); err == nil {
		t.Fatal("want error when a baseline entry has no benchmark line")
	}
}

const rsmBaselineJSON = `{
  "cells": {
    "batch=1,k=1 (single-slot baseline)": {"ops_per_sec": {"median": 460.0}},
    "batch=8,k=4 (batching + pipelining)": {"ops_per_sec": {"median": 6000.0}}
  }
}`

func TestGateRSM(t *testing.T) {
	baseline := writeFile(t, "rsm.json", rsmBaselineJSON)

	input := writeFile(t, "runs.json", `[
  {"max_batch": 1, "max_in_flight": 1, "completed": true, "ops_per_sec": 455.0},
  {"max_batch": 8, "max_in_flight": 4, "completed": true, "ops_per_sec": 5000.0}
]`)
	checks, err := gateRSM(baseline, input, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 2 {
		t.Fatalf("got %d checks, want 2", len(checks))
	}
	var pass, fail int
	for _, c := range checks {
		if c.pass() {
			pass++
		} else {
			fail++
		}
	}
	// 455 >= 460*0.95 passes; 5000 < 6000*0.95 regresses.
	if pass != 1 || fail != 1 {
		t.Errorf("got pass=%d fail=%d, want 1 and 1", pass, fail)
	}

	// A baseline cell with no matching run must be an error, not a pass.
	narrowed := writeFile(t, "narrow.json", `[
  {"max_batch": 1, "max_in_flight": 1, "completed": true, "ops_per_sec": 455.0}
]`)
	if _, err := gateRSM(baseline, narrowed, 0.05); err == nil {
		t.Fatal("want error when a baseline cell has no matching run")
	}
}

func TestParseCellKey(t *testing.T) {
	b, k, err := parseCellKey("batch=8,k=4 (batching + pipelining)")
	if err != nil || b != 8 || k != 4 {
		t.Fatalf("got %d,%d,%v", b, k, err)
	}
	if _, _, err := parseCellKey("rho=3 (weird)"); err == nil {
		t.Fatal("want error for unknown field")
	}
}
